#include "detect/relational.h"

#include "common/cut_hash.h"
#include "common/cut_storage.h"
#include "common/error.h"

namespace wcp::detect {

GeneralResult detect_possibly_general(const pred::VarComputation& vc,
                                      const GlobalPredicate& phi,
                                      std::int64_t max_cuts) {
  WCP_REQUIRE(phi != nullptr, "null global predicate");
  const Computation& comp = vc.computation;
  const std::size_t N = comp.num_processes();

  GeneralResult res;

  std::vector<pred::Env> envs(N);
  auto satisfies = [&](const std::vector<StateIndex>& cut) {
    for (std::size_t p = 0; p < N; ++p)
      envs[p] = vc.env(ProcessId(static_cast<int>(p)), cut[p]);
    return phi(envs);
  };

  // Flat-storage BFS (common/cut_storage.h): visited-insertion order equals
  // FIFO pop order, so the frontier is the arena suffix past `head`.
  CutArena arena(N);
  CutTable visited;
  const CutHash hasher;
  std::vector<StateIndex> scratch(N, 1);
  visited.intern(arena, scratch, hasher(scratch));

  const auto fill_stats = [&] {
    arena.add_stats(res.storage);
    visited.add_stats(res.storage);
  };

  for (std::size_t head = 0; head < arena.size(); ++head) {
    arena.copy_to(static_cast<CutHandle>(head), scratch);
    ++res.cuts_explored;
    if (satisfies(scratch)) {
      res.detected = true;
      res.cut = scratch;
      fill_stats();
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      fill_stats();
      return res;
    }
    for (std::size_t p = 0; p < N; ++p) {
      const ProcessId pid(static_cast<int>(p));
      if (scratch[p] + 1 > comp.num_states(pid)) continue;
      scratch[p] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < N && consistent; ++t) {
        if (t == p) continue;
        const ProcessId tid(static_cast<int>(t));
        if (comp.happened_before(pid, scratch[p], tid, scratch[t]) ||
            comp.happened_before(tid, scratch[t], pid, scratch[p]))
          consistent = false;
      }
      if (consistent) visited.intern(arena, scratch, hasher(scratch));
      scratch[p] -= 1;
    }
  }
  fill_stats();
  return res;
}

}  // namespace wcp::detect
