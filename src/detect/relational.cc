#include "detect/relational.h"

#include <queue>
#include <unordered_set>

#include "common/error.h"

namespace wcp::detect {

namespace {
struct CutHash {
  std::size_t operator()(const std::vector<StateIndex>& cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (StateIndex k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};
}  // namespace

GeneralResult detect_possibly_general(const pred::VarComputation& vc,
                                      const GlobalPredicate& phi,
                                      std::int64_t max_cuts) {
  WCP_REQUIRE(phi != nullptr, "null global predicate");
  const Computation& comp = vc.computation;
  const std::size_t N = comp.num_processes();

  GeneralResult res;

  std::vector<pred::Env> envs(N);
  auto satisfies = [&](const std::vector<StateIndex>& cut) {
    for (std::size_t p = 0; p < N; ++p)
      envs[p] = vc.env(ProcessId(static_cast<int>(p)), cut[p]);
    return phi(envs);
  };

  std::vector<StateIndex> initial(N, 1);
  std::queue<std::vector<StateIndex>> frontier;
  std::unordered_set<std::vector<StateIndex>, CutHash> visited;
  frontier.push(initial);
  visited.insert(initial);

  while (!frontier.empty()) {
    std::vector<StateIndex> cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;
    if (satisfies(cut)) {
      res.detected = true;
      res.cut = std::move(cut);
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }
    for (std::size_t p = 0; p < N; ++p) {
      const ProcessId pid(static_cast<int>(p));
      if (cut[p] + 1 > comp.num_states(pid)) continue;
      std::vector<StateIndex> next = cut;
      next[p] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < N && consistent; ++t) {
        if (t == p) continue;
        const ProcessId tid(static_cast<int>(t));
        if (comp.happened_before(pid, next[p], tid, next[t]) ||
            comp.happened_before(tid, next[t], pid, next[p]))
          consistent = false;
      }
      if (consistent && visited.insert(next).second)
        frontier.push(std::move(next));
    }
  }
  return res;
}

}  // namespace wcp::detect
