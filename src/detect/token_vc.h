// Single-token, vector-clock based WCP detection (§3 of the paper).
//
// One monitor process per predicate process. A unique token carries the
// candidate cut G (state index per predicate slot) and a color per slot.
// The monitor holding the token advances its own slot past eliminated
// states (candidates whose own component is <= G[slot]), accepts the first
// survivor (green), marks every slot j whose accepted candidate shows
// (j, G[j]) -> (self, G[self]) red, and forwards the token to a red slot;
// when all slots are green, G is the first cut satisfying the WCP
// (Theorem 3.2).
//
// Complexity (measured by the E1-E3 benches): O(n^2 m) total work and
// messages-bits, O(nm) work and space per monitor.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "app/snapshot.h"
#include "clock/vector_clock.h"
#include "detect/result.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

/// The token of Fig. 3, extended with V: the accepted candidate's full
/// vector clock per slot. V is required by the multi-token leader merge
/// (§3.5) and is also what the lemma-invariant test hooks inspect; the
/// single-token algorithm itself reads only G and color.
struct VcToken {
  std::vector<StateIndex> G;     // candidate cut; G[s] = 0 initially
  std::vector<Color> color;      // all red initially
  std::vector<VectorClock> V;    // accepted candidate clocks (width n each)

  // Recovery header (fault-tolerant runs only; see TokenRecoveryOptions).
  // `group` is the §3.5 group this token serves (-1 in single-token mode);
  // `incarnation` is bumped each time a guardian or the leader regenerates
  // the token, so stale duplicates can be told from the live one. Neither
  // field is charged in bits(): they are a constant-size extension header
  // and the paper's O(n) token-size claim is measured without it.
  int group = -1;
  std::int64_t incarnation = 0;

  explicit VcToken(std::size_t n)
      : G(n, 0), color(n, Color::kRed), V(n, VectorClock(n)) {}
  VcToken() = default;

  [[nodiscard]] std::size_t width() const { return G.size(); }

  /// Wire size: the paper's token is O(n) (G + color); V adds O(n^2) and is
  /// only carried for the multi-token variant, so it is costed separately.
  [[nodiscard]] std::int64_t bits(bool with_v) const {
    std::int64_t b = static_cast<std::int64_t>(G.size()) * 64 +
                     static_cast<std::int64_t>(color.size());
    if (with_v)
      for (const auto& vc : V) b += vc.bits();
    return b;
  }
};

/// Folds `from` into `into`, slot by slot: the higher G wins and brings its
/// color and accepted clock; at equal G a red mark wins because it records
/// an elimination proof. This is the §3.5 leader merge, reused to fold a
/// duplicate token (produced by a guardian's false-positive regeneration)
/// into the live one — both are sound states of the same lineage, and the
/// per-slot maximum preserves both soundness invariants.
void merge_token(VcToken& into, const VcToken& from);

// ---- recovery control payloads (MsgKind::kControl) -----------------------

/// Holder -> guardian: the token moved on (or starved); drop the checkpoint
/// and stop the watchdog.
struct TokenRelease {};

/// Holder -> guardian (or group leader): still alive and holding, extend
/// the lease.
struct TokenHeartbeat {
  int group = -1;
  std::int64_t incarnation = 0;
};

/// Grouped holder -> leader: holder is blocked with the stream ended, so
/// this group's token will never return; stop regenerating it.
struct TokenStarved {
  int group = -1;
  std::int64_t incarnation = 0;
};

/// Observation hook fired every time the token is about to be forwarded (or
/// detection declared). Used by the property-test suite to verify the
/// Lemma 3.1 invariants online.
using VcTokenObserver =
    std::function<void(const VcToken& token, int holder_slot, bool detecting)>;

class TokenVcMonitor final : public sim::Node {
 public:
  struct Config {
    int slot = 0;                              // this monitor's index in the cut
    std::vector<ProcessId> slot_to_pid;        // predicate slot -> process id
    bool starts_with_token = false;            // slot 0 creates the token
    std::shared_ptr<SharedDetection> shared;
    VcTokenObserver observer;                  // may be empty

    // §3.5 multi-token mode: when group_of_slot is non-empty, the token is
    // routed only to red slots of this monitor's own group, and returned to
    // the leader when none remain; detection happens at the leader.
    std::vector<int> group_of_slot;
    sim::NodeAddr leader{};

    // Distributed breakpoint: on detection, freeze all application
    // processes instead of stopping the simulation.
    bool halt_apps = false;

    // Token-holder crash recovery (lease/heartbeat + guardian regeneration;
    // disabled by default so fault-free runs are byte-identical).
    TokenRecoveryOptions recovery;
  };

  explicit TokenVcMonitor(Config cfg);

  void on_start() override;
  void on_packet(sim::Packet&& p) override;
  void on_crash() override;
  void on_restart() override;

  [[nodiscard]] bool holding_token() const { return token_.has_value(); }
  [[nodiscard]] bool starved() const { return waiting_ && eos_; }

 private:
  void process_token();
  void accept_and_route();
  void on_token(sim::Packet&& p);
  void enter_waiting();
  void notify_starved();
  void arm_heartbeat();
  void arm_watchdog(SimTime delay);
  void on_watchdog();
  [[nodiscard]] bool grouped() const { return !cfg_.group_of_slot.empty(); }
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::optional<VcToken> token_;  // volatile: lost on crash
  bool waiting_ = false;          // holding the token, blocked on a candidate

  // State a real monitor would keep on stable storage (survives on_crash):
  // the logged snapshot inbox and stream-end flag, the last accepted own
  // candidate (G and clock; restored into stale tokens by the fast-forward
  // rule in process_token), and the guardian checkpoint of the last token
  // this monitor forwarded.
  std::deque<app::VcSnapshot> inbox_;
  bool eos_ = false;              // application stream ended
  StateIndex last_G_ = 0;
  VectorClock last_V_{};
  bool has_last_ = false;
  std::optional<VcToken> checkpoint_;
  int successor_slot_ = -1;       // slot the checkpointed token went to
  SimTime watch_deadline_ = 0;
  bool forwarded_ever_ = false;

  // Bookkeeping (recomputable, so volatility does not matter).
  sim::NodeAddr token_sender_{};  // guardian of the token we hold
  bool has_sender_ = false;
  bool wd_armed_ = false;
  bool hb_armed_ = false;
  bool starved_notified_ = false;
};

/// Installs single-token monitors (one per predicate slot; slot 0 starts
/// with the token) into an existing network. Use for live instrumented
/// applications (see app/instrument.h); the replay harness run_token_vc
/// is built on this.
std::shared_ptr<SharedDetection> install_token_vc_monitors(
    sim::Network& net, const std::vector<ProcessId>& slot_to_pid,
    const VcTokenObserver& observer = {}, bool halt_apps = false,
    const TokenRecoveryOptions& recovery = {});

/// Runs the single-token algorithm online over a replay of `comp`.
DetectionResult run_token_vc(const Computation& comp, const RunOptions& opts,
                             const VcTokenObserver& observer = {});

}  // namespace wcp::detect
