#include "detect/stream_core.h"

#include <algorithm>

#include "common/cut_hash.h"
#include "common/error.h"

namespace wcp::detect {

// ---------------------------------------------------------------------------
// TokenCore
// ---------------------------------------------------------------------------

TokenCore::TokenCore(const app::StateStream& stream, app::CoreHooks hooks)
    : stream_(stream), hooks_(std::move(hooks)) {
  const std::size_t n = stream_.slots();
  WCP_REQUIRE(n >= 1, "empty predicate");
  queue_.resize(n);
  g_.assign(n, 0);
  red_.assign(n, true);
}

void TokenCore::on_state(std::size_t s) {
  if (done_) return;
  const StateIndex pos = stream_.last(s);
  if (!stream_.pred(s, pos)) return;  // only candidates enter Fig. 3
  queue_[s].push_back(pos);
  pump();
}

void TokenCore::on_eos(std::size_t s) {
  (void)s;
  if (done_) return;
  pump();  // the holder may now starve
}

void TokenCore::pump() {
  while (!done_) {
    const std::size_t s = holder_;
    StateIndex accepted = 0;  // position of the accepted candidate

    // Fig. 3 while-loop: consume candidates until one advances G[s].
    while (red_[s]) {
      if (queue_[s].empty()) {
        if (stream_.eos(s)) {
          done_ = true;  // starved: slot s's stream ended
          detected_ = false;
        }
        return;  // otherwise stall until slot s sends more candidates
      }
      const StateIndex pos = queue_[s].front();
      queue_[s].pop_front();
      ++candidates_examined_;
      hooks_.add_work(static_cast<std::int64_t>(n()));
      const StateIndex own = stream_.clock(s, pos, s);
      if (own > g_[s]) {
        g_[s] = own;
        red_[s] = false;
        accepted = pos;
      }
    }
    WCP_CHECK(accepted > 0);

    // Fig. 3 for-loop: the accepted clock invalidates dominated slots.
    hooks_.add_work(static_cast<std::int64_t>(n()));
    for (std::size_t j = 0; j < n(); ++j) {
      if (j == s) continue;
      const StateIndex cj = stream_.clock(s, accepted, j);
      if (cj >= g_[j]) {
        g_[j] = cj;
        red_[j] = true;
      }
    }

    int next = -1;
    for (std::size_t j = 0; j < n(); ++j)
      if (red_[j]) {
        next = static_cast<int>(j);
        break;
      }
    if (next < 0) {
      done_ = true;
      detected_ = true;
      cut_ = g_;
      return;
    }
    ++token_hops_;
    holder_ = static_cast<std::size_t>(next);
  }
}

StateIndex TokenCore::frontier(std::size_t s) const {
  if (done_ || queue_[s].empty()) return stream_.last(s) + 1;
  return queue_[s].front();
}

std::int64_t TokenCore::resident_bytes() const {
  std::int64_t b = static_cast<std::int64_t>(n()) *
                   static_cast<std::int64_t>(sizeof(StateIndex) + 1);
  for (const auto& q : queue_)
    b += static_cast<std::int64_t>(q.size() * sizeof(StateIndex));
  return b;
}

// ---------------------------------------------------------------------------
// CentralizedCore
// ---------------------------------------------------------------------------

CentralizedCore::CentralizedCore(const app::StateStream& stream,
                                 app::CoreHooks hooks)
    : stream_(stream), hooks_(std::move(hooks)) {
  const std::size_t n = stream_.slots();
  WCP_REQUIRE(n >= 1, "empty predicate");
  queue_.resize(n);
  in_dirty_.assign(n, false);
}

void CentralizedCore::on_state(std::size_t s) {
  if (done_) return;
  const StateIndex pos = stream_.last(s);
  if (!stream_.pred(s, pos)) return;  // only candidates are compared
  queue_[s].push_back(pos);
  if (queue_[s].size() == 1 && !in_dirty_[s]) {
    dirty_.push_back(s);
    in_dirty_[s] = true;
  }
  process();
}

void CentralizedCore::on_eos(std::size_t s) {
  if (done_) return;
  if (queue_[s].empty()) {
    // Slot s can never supply a queue head again: no cut exists.
    done_ = true;
    detected_ = false;
  }
}

void CentralizedCore::pop_head(std::size_t s) {
  hooks_.release(s, queue_[s].front());
  queue_[s].pop_front();
  ++eliminations_;
  if (!queue_[s].empty()) {
    if (!in_dirty_[s]) {
      dirty_.push_back(s);
      in_dirty_[s] = true;
    }
  } else if (stream_.eos(s)) {
    done_ = true;  // starved after its stream ended
    detected_ = false;
  }
}

void CentralizedCore::process() {
  while (!dirty_.empty()) {
    const std::size_t s = dirty_.front();
    dirty_.pop_front();
    in_dirty_[s] = false;
    if (queue_[s].empty()) continue;  // re-queued when a head arrives

    bool s_eliminated = false;
    const StateIndex head_s = queue_[s].front();
    for (std::size_t t = 0; t < n() && !s_eliminated; ++t) {
      if (t == s || queue_[t].empty()) continue;
      const StateIndex head_t = queue_[t].front();
      hooks_.add_work(1);
      // Own-component happened-before tests (O(1) each).
      if (stream_.clock(t, head_t, s) >= stream_.clock(s, head_s, s)) {
        // head_s -> head_t: eliminate s.
        pop_head(s);
        s_eliminated = true;
      } else if (stream_.clock(s, head_s, t) >= stream_.clock(t, head_t, t)) {
        // head_t -> head_s: eliminate t.
        pop_head(t);
      }
    }
    if (s_eliminated) continue;
  }

  // dirty empty: all present heads are pairwise concurrent. Detection needs
  // all n heads present.
  for (std::size_t s = 0; s < n(); ++s)
    if (queue_[s].empty()) return;

  done_ = true;
  detected_ = true;
  cut_.resize(n());
  for (std::size_t s = 0; s < n(); ++s)
    cut_[s] = stream_.clock(s, queue_[s].front(), s);
}

StateIndex CentralizedCore::frontier(std::size_t s) const {
  if (done_ || queue_[s].empty()) return stream_.last(s) + 1;
  return queue_[s].front();
}

std::int64_t CentralizedCore::resident_bytes() const {
  std::int64_t b = static_cast<std::int64_t>(n());
  for (const auto& q : queue_)
    b += static_cast<std::int64_t>(q.size() * sizeof(StateIndex));
  return b;
}

// ---------------------------------------------------------------------------
// LatticeOnlineCore
// ---------------------------------------------------------------------------

LatticeOnlineCore::LatticeOnlineCore(const app::StateStream& stream,
                                     app::CoreHooks hooks,
                                     std::int64_t max_cuts)
    : stream_(stream), hooks_(std::move(hooks)), max_cuts_(max_cuts) {
  WCP_REQUIRE(n() >= 1, "empty predicate");
  visited_arena_ = CutArena(n());
  // Seed the search with the bottom cut (always consistent).
  const std::vector<StateIndex> bottom(n(), 1);
  enqueue(visited_table_.intern(visited_arena_, bottom, CutHash{}(bottom))
              .handle);
}

void LatticeOnlineCore::enqueue(CutHandle h) {
  StateIndex level = 0;
  for (const std::uint32_t k : visited_arena_.get(h))
    level += static_cast<StateIndex>(k);
  ready_.push_back(Entry{level, seq_++, h});
  std::push_heap(ready_.begin(), ready_.end(), std::greater<>{});
}

void LatticeOnlineCore::on_state(std::size_t s) {
  if (done_) return;
  const StateIndex k = stream_.last(s);
  // Wake every cut that was waiting for exactly this state.
  auto it = parked_.find({s, k});
  if (it != parked_.end()) {
    for (const CutHandle h : it->second) enqueue(h);
    parked_.erase(it);
  }
  drain();
  check_exhausted();
}

void LatticeOnlineCore::on_eos(std::size_t s) {
  if (done_) return;
  // Parked cuts waiting on states of slot s can never be woken: every
  // parked key on s waits for a position > last(s), which will never
  // arrive, and no satisfying cut can extend past a finished stream.
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->first.first == s) {
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  drain();
  check_exhausted();
}

void LatticeOnlineCore::check_exhausted() {
  // No active cut anywhere: future states can only wake parked cuts, so
  // the exploration is complete and the predicate never held.
  if (!done_ && !gave_up_ && ready_.empty() && parked_.empty()) {
    done_ = true;
    detected_ = false;
  }
}

bool LatticeOnlineCore::available(const std::vector<StateIndex>& cut) const {
  for (std::size_t s = 0; s < n(); ++s)
    if (cut[s] > stream_.last(s)) return false;
  return true;
}

void LatticeOnlineCore::drain() {
  const CutHash hasher;

  while (!ready_.empty()) {
    const CutHandle handle = ready_.front().cut;
    std::pop_heap(ready_.begin(), ready_.end(), std::greater<>{});
    ready_.pop_back();
    visited_arena_.copy_to(handle, scratch_);
    std::vector<StateIndex>& cut = scratch_;

    if (!available(cut)) {
      // Park on the first missing component (unless its stream ended, in
      // which case the cut is unreachable and is dropped).
      for (std::size_t s = 0; s < n(); ++s) {
        if (cut[s] > stream_.last(s)) {
          if (!stream_.eos(s)) parked_[{s, cut[s]}].push_back(handle);
          break;
        }
      }
      continue;
    }

    // Cuts that travelled through the parked path were generated before
    // their advanced state's clock was known, so consistency could not be
    // checked then; validate every popped cut here.
    {
      bool consistent = true;
      for (std::size_t s = 0; s < n() && consistent; ++s) {
        for (std::size_t t = s + 1; t < n() && consistent; ++t) {
          hooks_.add_work(1);
          if (stream_.clock(s, cut[s], t) >= cut[t] ||
              stream_.clock(t, cut[t], s) >= cut[s])
            consistent = false;
        }
      }
      if (!consistent) continue;
    }

    ++cuts_explored_;
    max_frontier_ = std::max(
        max_frontier_,
        static_cast<std::int64_t>(ready_.size() + parked_.size()));
    if (max_cuts_ >= 0 && cuts_explored_ > max_cuts_) {
      gave_up_ = true;
      done_ = true;
      detected_ = false;
      return;
    }

    bool satisfies = true;
    for (std::size_t s = 0; s < n() && satisfies; ++s)
      if (!stream_.pred(s, cut[s])) satisfies = false;
    if (satisfies) {
      done_ = true;
      detected_ = true;
      cut_ = cut;
      return;
    }

    // Expand consistent successors. Consistency of (s advanced by one)
    // against component t: neither state happened before the other, via
    // the own-component vector-clock test. The advance is done in place on
    // the scratch cut and undone after interning — no temporary vectors.
    for (std::size_t s = 0; s < n(); ++s) {
      cut[s] += 1;
      const std::size_t hash = hasher(cut);
      if (visited_table_.find(visited_arena_, cut, hash) != kNoCut) {
        cut[s] -= 1;
        continue;
      }
      // The advanced state may not have arrived yet; consistency can only
      // be decided with its clock. Park the candidate until it arrives.
      if (cut[s] > stream_.last(s)) {
        if (!stream_.eos(s))
          parked_[{s, cut[s]}].push_back(
              visited_table_.intern(visited_arena_, cut, hash).handle);
        cut[s] -= 1;
        continue;
      }
      bool consistent = true;
      for (std::size_t t = 0; t < n() && consistent; ++t) {
        if (t == s) continue;
        hooks_.add_work(1);
        // (t, cut[t]) -> (s, cut[s]) iff vs[t] >= cut[t]; and vice versa.
        if (stream_.clock(s, cut[s], t) >= cut[t] ||
            stream_.clock(t, cut[t], s) >= cut[s])
          consistent = false;
      }
      if (consistent)
        enqueue(visited_table_.intern(visited_arena_, cut, hash).handle);
      cut[s] -= 1;
    }
  }
}

StateIndex LatticeOnlineCore::frontier(std::size_t s) const {
  if (done_) return stream_.last(s) + 1;
  StateIndex lo = stream_.last(s) + 1;
  bool any = false;
  const auto consider = [&](CutHandle h) {
    const StateIndex c = static_cast<StateIndex>(visited_arena_.get(h)[s]);
    if (!any || c < lo) lo = c;
    any = true;
  };
  for (const Entry& e : ready_) consider(e.cut);
  for (const auto& [key, cuts] : parked_)
    for (const CutHandle h : cuts) consider(h);
  return lo;
}

void LatticeOnlineCore::collect(std::span<const StateIndex> floor) {
  WCP_CHECK(floor.size() == n());
  if (visited_arena_.empty()) return;

  // Retire every visited cut with some component strictly below the floor.
  // Safety: active (ready + parked) cuts have all components >= the
  // frontier >= floor, and successors only grow componentwise, so no
  // future cut can equal a retired one — dropping it from the visited set
  // cannot cause re-exploration.
  CutArena next_arena(n());
  CutTable next_table;
  std::vector<CutHandle> remap(visited_arena_.size(), kNoCut);
  const CutHash hasher;
  for (CutHandle h = 0; h < static_cast<CutHandle>(visited_arena_.size());
       ++h) {
    const auto span = visited_arena_.get(h);
    bool keep = true;
    for (std::size_t s = 0; s < n() && keep; ++s)
      if (static_cast<StateIndex>(span[s]) < floor[s]) keep = false;
    if (!keep) {
      ++cuts_retired_;
      continue;
    }
    visited_arena_.copy_to(h, scratch_);
    remap[h] = next_table.intern(next_arena, scratch_, hasher(scratch_)).handle;
  }
  if (next_arena.size() == visited_arena_.size()) return;  // nothing retired

  for (Entry& e : ready_) {
    e.cut = remap[e.cut];
    WCP_CHECK_MSG(e.cut != kNoCut, "GC retired an active ready cut");
  }
  for (auto& [key, cuts] : parked_)
    for (CutHandle& h : cuts) {
      h = remap[h];
      WCP_CHECK_MSG(h != kNoCut, "GC retired an active parked cut");
    }

  retired_storage_.peak_bytes =
      std::max(retired_storage_.peak_bytes,
               visited_arena_.peak_bytes() + visited_table_.peak_bytes());
  retired_storage_.table_probes += visited_table_.probes();
  retired_storage_.heap_allocs +=
      visited_arena_.growths() + visited_table_.growths();
  visited_arena_ = std::move(next_arena);
  visited_table_ = std::move(next_table);
}

CutStorageStats LatticeOnlineCore::storage() const {
  CutStorageStats s;
  visited_arena_.add_stats(s);
  visited_table_.add_stats(s);
  s.peak_bytes = std::max(s.peak_bytes, retired_storage_.peak_bytes);
  s.table_probes += retired_storage_.table_probes;
  s.heap_allocs += retired_storage_.heap_allocs;
  return s;
}

std::int64_t LatticeOnlineCore::resident_bytes() const {
  std::int64_t b =
      visited_arena_.bytes_in_use() + visited_table_.bytes_in_use();
  b += static_cast<std::int64_t>(ready_.size() * sizeof(Entry));
  for (const auto& [key, cuts] : parked_)
    b += static_cast<std::int64_t>(64 + cuts.size() * sizeof(CutHandle));
  return b;
}

}  // namespace wcp::detect
