#include "detect/offline.h"

#include <deque>
#include <optional>
#include <vector>

#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "common/error.h"

namespace wcp::detect {

namespace {

// The width-n clock Fig. 2 would stamp on state (p, k) is exactly the
// ground-truth clock projected onto the predicate processes.
VectorClock project(const Computation& comp, ProcessId p, StateIndex k) {
  const auto preds = comp.predicate_processes();
  std::vector<StateIndex> c(preds.size());
  for (std::size_t s = 0; s < preds.size(); ++s)
    c[s] = comp.clock_component(p, k, preds[s]);
  return VectorClock(std::move(c));
}

}  // namespace

DetectionResult detect_token_vc_offline(const Computation& comp) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  DetectionResult res;
  res.monitor_metrics.resize(n + 1);
  res.app_metrics.resize(comp.num_processes());

  // Candidate queue per slot: the snapshot stream of Fig. 2.
  std::vector<std::deque<VectorClock>> queue(n);
  for (std::size_t s = 0; s < n; ++s) {
    const ProcessId p = preds[s];
    for (StateIndex k = 1; k <= comp.num_states(p); ++k)
      if (comp.local_pred(p, k)) {
        queue[s].push_back(project(comp, p, k));
        res.app_metrics.record_send(p, MsgKind::kSnapshot,
                                    static_cast<std::int64_t>(n) * 64);
      }
  }

  // The projection above pulled every clock through the columnar store.
  res.trace_store = comp.trace_store_stats();

  std::vector<StateIndex> G(n, 0);
  std::vector<Color> color(n, Color::kRed);
  int holder = 0;

  while (true) {
    const auto s = static_cast<std::size_t>(holder);
    const ProcessId slot_metric(holder);
    std::optional<VectorClock> accepted;

    // Fig. 3 while-loop.
    while (color[s] == Color::kRed) {
      if (queue[s].empty()) {
        res.detected = false;  // starved: the stream ended
        return res;
      }
      VectorClock cand = std::move(queue[s].front());
      queue[s].pop_front();
      res.monitor_metrics.add_work(slot_metric,
                                   static_cast<std::int64_t>(n));
      if (cand[s] > G[s]) {
        G[s] = cand[s];
        color[s] = Color::kGreen;
        accepted = std::move(cand);
      }
    }
    WCP_CHECK(accepted.has_value());

    // Fig. 3 for-loop.
    res.monitor_metrics.add_work(slot_metric, static_cast<std::int64_t>(n));
    for (std::size_t j = 0; j < n; ++j) {
      if (j == s) continue;
      if ((*accepted)[j] >= G[j]) {
        G[j] = (*accepted)[j];
        color[j] = Color::kRed;
      }
    }

    int next = -1;
    for (std::size_t j = 0; j < n; ++j)
      if (color[j] == Color::kRed) {
        next = static_cast<int>(j);
        break;
      }
    if (next < 0) {
      res.detected = true;
      res.cut = G;
      return res;
    }
    res.monitor_metrics.record_send(
        slot_metric, MsgKind::kToken,
        static_cast<std::int64_t>(n) * 64 + static_cast<std::int64_t>(n));
    res.monitor_metrics.bump_token_hops();
    res.token_hops = res.monitor_metrics.token_hops();
    holder = next;
  }
}

DetectionResult detect_direct_dep_offline(const Computation& comp) {
  const std::size_t N = comp.num_processes();

  DetectionResult res;
  res.monitor_metrics.resize(N + 1);
  res.app_metrics.resize(N);

  // Snapshot stream per process (§4.1): admissible states with the
  // dependences accumulated since the previous snapshot.
  struct Snap {
    LamportTime clock;
    std::vector<Dependence> deps;
  };
  std::vector<std::deque<Snap>> queue(N);
  for (std::size_t p = 0; p < N; ++p) {
    const ProcessId pid(static_cast<int>(p));
    const bool constrained = comp.predicate_slot(pid) >= 0;
    std::vector<Dependence> pending;
    for (StateIndex k = 1; k <= comp.num_states(pid); ++k) {
      if (const auto dep = comp.receive_dependence(pid, k))
        pending.push_back(*dep);
      if (!constrained || comp.local_pred(pid, k)) {
        res.app_metrics.record_send(
            pid, MsgKind::kSnapshot,
            64 + static_cast<std::int64_t>(pending.size()) * 2 * 64);
        queue[p].push_back(Snap{k, std::move(pending)});
        pending.clear();
      }
    }
  }

  std::vector<Color> color(N, Color::kRed);
  std::vector<LamportTime> G(N, 0);
  std::vector<int> next_red(N);
  for (std::size_t p = 0; p < N; ++p)
    next_red[p] = p + 1 < N ? static_cast<int>(p + 1) : -1;
  int holder = 0;

  while (true) {
    const auto h = static_cast<std::size_t>(holder);
    const ProcessId hid(holder);
    WCP_CHECK(color[h] == Color::kRed);

    // Fig. 4 repeat-loop.
    std::vector<Dependence> deplist;
    LamportTime accepted = 0;
    while (true) {
      if (queue[h].empty()) {
        res.detected = false;
        return res;
      }
      Snap snap = std::move(queue[h].front());
      queue[h].pop_front();
      res.monitor_metrics.add_work(
          hid, 1 + static_cast<std::int64_t>(snap.deps.size()));
      deplist.insert(deplist.end(), snap.deps.begin(), snap.deps.end());
      if (snap.clock > G[h]) {
        accepted = snap.clock;
        break;
      }
    }
    G[h] = accepted;
    color[h] = Color::kGreen;

    // Poll phase (immediate responses).
    for (const Dependence& dep : deplist) {
      const auto j = dep.source.idx();
      WCP_CHECK(j != h);
      res.monitor_metrics.record_send(hid, MsgKind::kPoll, 2 * 64);
      // Same units as the online run: poll send + reply receipt at the
      // holder, poll handling at the target.
      res.monitor_metrics.add_work(hid, 2);
      res.monitor_metrics.add_work(dep.source, 1);
      const Color old = color[j];
      if (dep.clock >= G[j]) {
        color[j] = Color::kRed;
        G[j] = dep.clock;
      }
      const bool became_red = color[j] == Color::kRed && old == Color::kGreen;
      if (became_red) {
        next_red[j] = next_red[h];
        next_red[h] = static_cast<int>(j);
      }
      res.monitor_metrics.record_send(dep.source, MsgKind::kPollReply, 1);
    }

    const int next = next_red[h];
    if (next < 0) {
      res.detected = true;
      res.full_cut.assign(G.begin(), G.end());
      const auto preds = comp.predicate_processes();
      res.cut.resize(preds.size());
      for (std::size_t s = 0; s < preds.size(); ++s)
        res.cut[s] = res.full_cut[preds[s].idx()];
      return res;
    }
    res.monitor_metrics.record_send(hid, MsgKind::kToken, 1);
    res.monitor_metrics.bump_token_hops();
    res.token_hops = res.monitor_metrics.token_hops();
    holder = next;
  }
}

}  // namespace wcp::detect
