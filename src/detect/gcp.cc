#include "detect/gcp.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/cut_hash.h"
#include "common/cut_storage.h"
#include "common/error.h"

namespace wcp::detect {

std::vector<ChannelPredicate> ChannelPredicate::all_channels_empty(
    std::size_t N) {
  std::vector<ChannelPredicate> out;
  out.reserve(N * (N - 1));
  for (std::size_t i = 0; i < N; ++i)
    for (std::size_t j = 0; j < N; ++j)
      if (i != j)
        out.push_back(empty(ProcessId(static_cast<int>(i)),
                            ProcessId(static_cast<int>(j))));
  return out;
}

std::ostream& operator<<(std::ostream& os, const ChannelPredicate& cp) {
  os << "channel(" << cp.from << "->" << cp.to << ") ";
  switch (cp.kind) {
    case ChannelPredicate::Kind::kEmpty: return os << "empty";
    case ChannelPredicate::Kind::kAtMost: return os << "<= " << cp.k;
    case ChannelPredicate::Kind::kAtLeast: return os << ">= " << cp.k;
  }
  return os;
}

namespace {

// Per-channel sorted event positions, for O(log) prefix counts.
struct ChannelCounts {
  std::vector<StateIndex> send_states;  // sorted send_state values
  std::vector<StateIndex> recv_states;  // sorted recv_state values (>0 only)

  // Messages sent by `from` while it advanced to state f: send transitions
  // s -> s+1 with s < f.
  [[nodiscard]] std::int64_t sent_before(StateIndex f) const {
    return std::lower_bound(send_states.begin(), send_states.end(), f) -
           send_states.begin();
  }
  // Messages received by `to` at state t: receive created a state r <= t.
  [[nodiscard]] std::int64_t received_at(StateIndex t) const {
    return std::upper_bound(recv_states.begin(), recv_states.end(), t) -
           recv_states.begin();
  }
};

ChannelCounts build_counts(const Computation& comp, ProcessId from,
                           ProcessId to) {
  ChannelCounts cc;
  for (const MessageRecord& m : comp.messages()) {
    if (m.from != from || m.to != to) continue;
    cc.send_states.push_back(m.send_state);
    if (m.delivered()) cc.recv_states.push_back(m.recv_state);
  }
  std::sort(cc.send_states.begin(), cc.send_states.end());
  std::sort(cc.recv_states.begin(), cc.recv_states.end());
  return cc;
}

// The GCP's process set: the computation's predicate processes plus every
// channel endpoint, in ascending id order.
std::vector<ProcessId> gcp_process_set(
    const Computation& comp, std::span<const ChannelPredicate> channels) {
  std::vector<ProcessId> procs(comp.predicate_processes().begin(),
                               comp.predicate_processes().end());
  for (const auto& cp : channels) {
    procs.push_back(cp.from);
    procs.push_back(cp.to);
  }
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  return procs;
}

}  // namespace

std::int64_t in_transit(const Computation& comp, ProcessId from,
                        StateIndex from_state, ProcessId to,
                        StateIndex to_state) {
  const auto cc = build_counts(comp, from, to);
  return cc.sent_before(from_state) - cc.received_at(to_state);
}

GcpResult detect_gcp(const Computation& comp,
                     std::span<const ChannelPredicate> channels) {
  GcpResult res;
  res.procs = gcp_process_set(comp, channels);
  const std::size_t w = res.procs.size();
  WCP_REQUIRE(w >= 1, "GCP over an empty process set");

  std::map<ProcessId, std::size_t> slot_of;
  for (std::size_t s = 0; s < w; ++s) slot_of[res.procs[s]] = s;

  // Admissible states per slot: local-predicate states for predicate
  // processes, every state otherwise.
  std::vector<std::vector<StateIndex>> cand(w);
  for (std::size_t s = 0; s < w; ++s) {
    const ProcessId p = res.procs[s];
    const bool constrained = comp.predicate_slot(p) >= 0;
    for (StateIndex k = 1; k <= comp.num_states(p); ++k)
      if (!constrained || comp.local_pred(p, k)) cand[s].push_back(k);
    if (cand[s].empty()) return res;  // local predicate never holds
  }

  struct ChannelState {
    ChannelPredicate pred;
    ChannelCounts counts;
    std::size_t from_slot, to_slot;
  };
  std::vector<ChannelState> chans;
  chans.reserve(channels.size());
  for (const auto& cp : channels)
    chans.push_back(ChannelState{cp, build_counts(comp, cp.from, cp.to),
                                 slot_of.at(cp.from), slot_of.at(cp.to)});

  std::vector<std::size_t> pos(w, 0);
  auto advance = [&](std::size_t s) -> bool {
    ++res.eliminations;
    return ++pos[s] < cand[s].size();
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Consistency eliminations (ground-truth happened-before).
    for (std::size_t s = 0; s < w && !changed; ++s) {
      for (std::size_t t = 0; t < w; ++t) {
        if (s == t) continue;
        if (comp.happened_before(res.procs[s], cand[s][pos[s]], res.procs[t],
                                 cand[t][pos[t]])) {
          if (!advance(s)) return res;
          changed = true;
          break;
        }
      }
    }
    if (changed) continue;

    // Channel-predicate eliminations (linear-predicate forbidden states).
    for (const auto& ch : chans) {
      ++res.channel_evals;
      const std::int64_t transit =
          ch.counts.sent_before(cand[ch.from_slot][pos[ch.from_slot]]) -
          ch.counts.received_at(cand[ch.to_slot][pos[ch.to_slot]]);
      if (ch.pred.holds(transit)) continue;
      // Violated: for receiver-monotone predicates (empty / at-most) the
      // receiver's candidate can never appear in the first satisfying cut;
      // for sender-monotone (at-least) the sender's can't (see gcp.h).
      const std::size_t victim =
          ch.pred.kind == ChannelPredicate::Kind::kAtLeast ? ch.from_slot
                                                           : ch.to_slot;
      if (!advance(victim)) return res;
      changed = true;
      break;
    }
  }

  res.detected = true;
  res.cut.resize(w);
  for (std::size_t s = 0; s < w; ++s) res.cut[s] = cand[s][pos[s]];
  return res;
}

GcpResult detect_gcp_lattice(const Computation& comp,
                             std::span<const ChannelPredicate> channels,
                             std::int64_t max_cuts) {
  GcpResult res;
  res.procs = gcp_process_set(comp, channels);
  const std::size_t w = res.procs.size();
  WCP_REQUIRE(w >= 1, "GCP over an empty process set");

  std::map<ProcessId, std::size_t> slot_of;
  for (std::size_t s = 0; s < w; ++s) slot_of[res.procs[s]] = s;

  std::vector<ChannelCounts> counts;
  counts.reserve(channels.size());
  for (const auto& cp : channels)
    counts.push_back(build_counts(comp, cp.from, cp.to));

  auto satisfies = [&](const std::vector<StateIndex>& cut) {
    for (std::size_t s = 0; s < w; ++s) {
      const ProcessId p = res.procs[s];
      if (comp.predicate_slot(p) >= 0 && !comp.local_pred(p, cut[s]))
        return false;
    }
    for (std::size_t c = 0; c < channels.size(); ++c) {
      ++res.channel_evals;
      const std::int64_t transit =
          counts[c].sent_before(cut[slot_of.at(channels[c].from)]) -
          counts[c].received_at(cut[slot_of.at(channels[c].to)]);
      if (!channels[c].holds(transit)) return false;
    }
    return true;
  };

  // Flat-storage BFS (common/cut_storage.h): cuts enter the arena in FIFO
  // order, so the explicit frontier queue collapses into the sweep index.
  CutArena arena(w);
  CutTable visited;
  const CutHash hasher;
  std::vector<StateIndex> scratch(w, 1);
  visited.intern(arena, scratch, hasher(scratch));

  const auto fill_stats = [&] {
    arena.add_stats(res.storage);
    visited.add_stats(res.storage);
  };

  for (std::size_t head = 0; head < arena.size(); ++head) {
    arena.copy_to(static_cast<CutHandle>(head), scratch);
    ++res.cuts_explored;
    if (satisfies(scratch)) {
      res.detected = true;
      res.cut = scratch;
      fill_stats();
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      fill_stats();
      return res;
    }

    for (std::size_t s = 0; s < w; ++s) {
      if (scratch[s] + 1 > comp.num_states(res.procs[s])) continue;
      scratch[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < w && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(res.procs[s], scratch[s], res.procs[t],
                                 scratch[t]) ||
            comp.happened_before(res.procs[t], scratch[t], res.procs[s],
                                 scratch[s]))
          consistent = false;
      }
      if (consistent) visited.intern(arena, scratch, hasher(scratch));
      scratch[s] -= 1;
    }
  }
  fill_stats();
  return res;
}

}  // namespace wcp::detect
