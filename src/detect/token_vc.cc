#include "detect/token_vc.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

void merge_token(VcToken& into, const VcToken& from) {
  WCP_CHECK(into.width() == from.width());
  for (std::size_t s = 0; s < into.width(); ++s) {
    if (from.G[s] > into.G[s]) {
      into.G[s] = from.G[s];
      into.color[s] = from.color[s];
      into.V[s] = from.V[s];
    } else if (from.G[s] == into.G[s] && from.color[s] == Color::kRed) {
      into.color[s] = Color::kRed;
    }
  }
  into.incarnation = std::max(into.incarnation, from.incarnation);
}

TokenVcMonitor::TokenVcMonitor(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "monitor needs shared detection state");
  WCP_REQUIRE(cfg_.slot >= 0 &&
                  static_cast<std::size_t>(cfg_.slot) < cfg_.slot_to_pid.size(),
              "bad slot " << cfg_.slot);
}

void TokenVcMonitor::on_start() {
  if (cfg_.starts_with_token) {
    token_.emplace(n());
    process_token();
  }
}

void TokenVcMonitor::on_crash() {
  // The held token is the one genuinely volatile piece of monitor state;
  // everything else (inbox log, last-accept memory, guardian checkpoint) is
  // modeled as stable storage. The guardian that forwarded us the token
  // regenerates it when our heartbeats stop.
  token_.reset();
  waiting_ = false;
  starved_notified_ = false;
}

void TokenVcMonitor::on_restart() {
  if (!cfg_.recovery.enabled || cfg_.shared->detected) return;
  // Genesis regeneration: if this monitor created the token and it never
  // left (so no guardian holds a checkpoint), the crash destroyed the only
  // copy — recreate it. The fast-forward rule in process_token restores the
  // progress recorded in the durable last-accept memory.
  if (cfg_.starts_with_token && !forwarded_ever_ && !token_.has_value()) {
    ++net().fault_counters().token_regenerations;
    token_.emplace(n());
    process_token();
  }
}

void TokenVcMonitor::on_packet(sim::Packet&& p) {
  switch (p.kind) {
    case MsgKind::kSnapshot: {
      auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
      net().monitor_buffer_change(pid(), snap.bytes(), +1);
      inbox_.push_back(std::move(snap));
      if (waiting_) process_token();
      break;
    }
    case MsgKind::kToken:
      on_token(std::move(p));
      break;
    case MsgKind::kControl:
      if (p.payload.type() == typeid(TokenRelease)) {
        checkpoint_.reset();  // successor moved the token on (or starved)
        break;
      }
      if (p.payload.type() == typeid(TokenHeartbeat)) {
        if (checkpoint_.has_value())
          watch_deadline_ = net().simulator().now() + cfg_.recovery.lease;
        break;
      }
      eos_ = true;  // EndOfStream: if we starve now, the run ends idle
      if (cfg_.recovery.enabled && starved()) notify_starved();
      break;
    default:
      WCP_CHECK_MSG(false, "token-VC monitor got " << to_string(p.kind));
  }
}

void TokenVcMonitor::on_token(sim::Packet&& p) {
  auto in = std::any_cast<VcToken>(std::move(p.payload));
  net().bump_token_hops();
  const auto s = static_cast<std::size_t>(cfg_.slot);
  if (!cfg_.recovery.enabled) {
    WCP_CHECK(!token_.has_value());
    // The token is only ever sent to a red slot (Fig. 3 routing).
    WCP_CHECK(in.color[s] == Color::kRed);
  }
  starved_notified_ = false;  // a fresh token deserves a fresh starve notice
  if (token_.has_value()) {
    // Duplicate from a guardian's false-positive regeneration: fold it into
    // the live token (per-slot max — see merge_token) and re-examine.
    merge_token(*token_, in);
  } else {
    token_ = std::move(in);
    token_sender_ = p.from;
    has_sender_ = true;
  }
  process_token();
}

void TokenVcMonitor::process_token() {
  auto& tok = *token_;
  const auto s = static_cast<std::size_t>(cfg_.slot);

  // Fast-forward (recovery): a regenerated token can lag this monitor's
  // durable last-accept memory. Catch it up before consuming candidates,
  // otherwise a stale token would wait for candidates that were already
  // accepted — and consumed — by its lost predecessor.
  if (has_last_ && tok.color[s] == Color::kRed && last_G_ > tok.G[s]) {
    tok.G[s] = last_G_;
    tok.color[s] = Color::kGreen;
    tok.V[s] = last_V_;
  }

  // Fig. 3 while-loop: consume candidates until one survives the current
  // elimination threshold G[s].
  while (tok.color[s] == Color::kRed) {
    if (inbox_.empty()) {
      enter_waiting();
      return;
    }
    app::VcSnapshot snap = std::move(inbox_.front());
    inbox_.pop_front();
    net().monitor_buffer_change(pid(), -snap.bytes(), -1);
    // Examining (and possibly eliminating) one candidate is O(n): the
    // snapshot was received, copied, and its own component compared.
    net().add_monitor_work(pid(), static_cast<std::int64_t>(n()));
    if (snap.vclock[s] > tok.G[s]) {
      tok.G[s] = snap.vclock[s];
      tok.color[s] = Color::kGreen;
      tok.V[s] = std::move(snap.vclock);
      last_G_ = tok.G[s];
      last_V_ = tok.V[s];
      has_last_ = true;
    }
  }
  waiting_ = false;
  accept_and_route();
}

void TokenVcMonitor::enter_waiting() {
  waiting_ = true;
  if (!cfg_.recovery.enabled) return;
  if (starved()) {
    notify_starved();
    return;
  }
  arm_heartbeat();
}

void TokenVcMonitor::notify_starved() {
  // Blocked with the stream over: this token will never move again. Tell
  // whoever would regenerate it to stand down, so no recovery timer keeps
  // the simulation alive on an undetectable run.
  if (starved_notified_) return;
  starved_notified_ = true;
  if (grouped()) {
    send(cfg_.leader, MsgKind::kControl,
         TokenStarved{token_->group, token_->incarnation}, /*bits=*/96);
  } else if (has_sender_) {
    send(token_sender_, MsgKind::kControl, TokenRelease{}, /*bits=*/1);
  }
}

void TokenVcMonitor::arm_heartbeat() {
  if (hb_armed_) return;
  // Genesis holder before the first forward has no guardian to reassure
  // (it self-recovers in on_restart instead).
  if (!grouped() && !has_sender_) return;
  hb_armed_ = true;
  after(cfg_.recovery.heartbeat, [this] {
    hb_armed_ = false;
    if (!waiting_ || !token_.has_value() || cfg_.shared->detected) return;
    if (starved()) {
      notify_starved();
      return;
    }
    const sim::NodeAddr guardian = grouped() ? cfg_.leader : token_sender_;
    send(guardian, MsgKind::kControl,
         TokenHeartbeat{token_->group, token_->incarnation}, /*bits=*/96);
    ++net().fault_counters().heartbeats;
    arm_heartbeat();
  });
}

void TokenVcMonitor::arm_watchdog(SimTime delay) {
  if (wd_armed_) return;
  wd_armed_ = true;
  after(delay, [this] {
    wd_armed_ = false;
    on_watchdog();
  });
}

void TokenVcMonitor::on_watchdog() {
  if (!checkpoint_.has_value() || cfg_.shared->detected) return;
  const SimTime now = net().simulator().now();
  if (now < watch_deadline_) {  // a heartbeat extended the lease
    arm_watchdog(watch_deadline_ - now);
    return;
  }
  const sim::NodeAddr succ = sim::NodeAddr::monitor(
      cfg_.slot_to_pid[static_cast<std::size_t>(successor_slot_)]);
  if (net().is_down_forever(succ)) return;  // undetectable; let the run drain
  // Lease expired without a heartbeat or release: the successor lost the
  // token. Re-issue the checkpointed copy under a new incarnation. If the
  // successor was merely slow, the duplicate is folded away by merge_token.
  ++net().fault_counters().token_regenerations;
  VcToken copy = *checkpoint_;
  ++copy.incarnation;
  checkpoint_->incarnation = copy.incarnation;
  const std::int64_t bits = copy.bits(/*with_v=*/grouped());
  send(succ, MsgKind::kToken, std::move(copy), bits);
  watch_deadline_ = now + cfg_.recovery.lease;
  arm_watchdog(cfg_.recovery.lease);
}

void TokenVcMonitor::accept_and_route() {
  auto& tok = *token_;
  const auto s = static_cast<std::size_t>(cfg_.slot);
  const VectorClock& cand = tok.V[s];
  WCP_CHECK(cand.width() == n() && cand[s] == tok.G[s]);

  // Fig. 3 for-loop: any j whose candidate state is dominated by ours
  // ((j, G[j]) happened before (s, G[s])) is eliminated. Re-applying this
  // after a merge is sound and idempotent: V[s] is the live accepted
  // candidate, so its elimination evidence never goes stale.
  net().add_monitor_work(pid(), static_cast<std::int64_t>(n()));
  for (std::size_t j = 0; j < n(); ++j) {
    if (j == s) continue;
    if (cand[j] >= tok.G[j]) {
      tok.G[j] = cand[j];
      tok.color[j] = Color::kRed;
    }
  }

  const int my_group = grouped() ? cfg_.group_of_slot[s] : 0;

  // Route to the first red slot (own group only in §3.5 mode), or finish.
  int red = -1;
  for (std::size_t j = 0; j < n(); ++j) {
    if (tok.color[j] == Color::kRed &&
        (!grouped() || cfg_.group_of_slot[j] == my_group)) {
      red = static_cast<int>(j);
      break;
    }
  }

  if (cfg_.observer) cfg_.observer(tok, cfg_.slot, !grouped() && red < 0);

  VcToken out = std::move(tok);
  token_.reset();

  if (red >= 0) {
    const std::int64_t bits = out.bits(/*with_v=*/grouped());
    if (cfg_.recovery.enabled && !grouped()) {
      // Become the successor's guardian: checkpoint what we forward and
      // watch for its heartbeats; release our own guardian.
      checkpoint_ = out;
      successor_slot_ = red;
      watch_deadline_ = net().simulator().now() + cfg_.recovery.lease;
      arm_watchdog(cfg_.recovery.lease);
      if (has_sender_)
        send(token_sender_, MsgKind::kControl, TokenRelease{}, /*bits=*/1);
    }
    forwarded_ever_ = true;
    send(sim::NodeAddr::monitor(
             cfg_.slot_to_pid[static_cast<std::size_t>(red)]),
         MsgKind::kToken, std::move(out), bits);
    return;
  }

  if (grouped()) {
    // No red state left inside this group: return the token to the leader,
    // which merges it with the other groups' tokens (§3.5).
    const std::int64_t bits = out.bits(/*with_v=*/true);
    forwarded_ever_ = true;
    send(cfg_.leader, MsgKind::kToken, std::move(out), bits);
    return;
  }

  // Single-token mode: all slots green => first WCP cut found (Thm 3.2).
  auto& shared = *cfg_.shared;
  shared.detected = true;
  shared.cut = out.G;
  shared.detect_time = net().simulator().now();
  if (cfg_.recovery.enabled && has_sender_)
    send(token_sender_, MsgKind::kControl, TokenRelease{}, /*bits=*/1);
  if (cfg_.halt_apps) {
    // Distributed breakpoint: freeze the application and let the run
    // drain; the harness reads the frozen states afterwards.
    for (std::size_t p = 0; p < net().num_processes(); ++p)
      send(sim::NodeAddr::app(ProcessId(static_cast<int>(p))),
           MsgKind::kControl, app::Halt{}, /*bits=*/1);
  } else {
    net().simulator().stop();
  }
}

std::shared_ptr<SharedDetection> install_token_vc_monitors(
    sim::Network& net, const std::vector<ProcessId>& slot_to_pid,
    const VcTokenObserver& observer, bool halt_apps,
    const TokenRecoveryOptions& recovery) {
  WCP_REQUIRE(!slot_to_pid.empty(), "empty predicate");
  auto shared = std::make_shared<SharedDetection>();
  for (std::size_t s = 0; s < slot_to_pid.size(); ++s) {
    TokenVcMonitor::Config mc;
    mc.slot = static_cast<int>(s);
    mc.slot_to_pid = slot_to_pid;
    mc.starts_with_token = (s == 0);
    mc.shared = shared;
    mc.observer = observer;
    mc.halt_apps = halt_apps;
    mc.recovery = recovery;
    net.add_node(sim::NodeAddr::monitor(slot_to_pid[s]),
                 std::make_unique<TokenVcMonitor>(std::move(mc)));
  }
  return shared;
}

DetectionResult run_token_vc(const Computation& comp, const RunOptions& opts,
                             const VcTokenObserver& observer) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  sim::Network net(network_config(opts, comp.num_processes()));

  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());
  auto shared = install_token_vc_monitors(
      net, slot_to_pid, observer, opts.halt_on_detect, effective_recovery(opts));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.compress_clocks = opts.compress_clocks;
  const auto drivers = app::install_app_drivers(net, comp, drv);

  net.start_and_run(opts.max_events);

  DetectionResult r;
  if (opts.halt_on_detect && shared->detected) {
    r.frozen_cut.reserve(drivers.size());
    for (const auto* d : drivers) r.frozen_cut.push_back(d->current_state());
  }
  finish_result(r, net, *shared);
  return r;
}

}  // namespace wcp::detect
