#include "detect/token_vc.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

TokenVcMonitor::TokenVcMonitor(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "monitor needs shared detection state");
  WCP_REQUIRE(cfg_.slot >= 0 &&
                  static_cast<std::size_t>(cfg_.slot) < cfg_.slot_to_pid.size(),
              "bad slot " << cfg_.slot);
}

void TokenVcMonitor::on_start() {
  if (cfg_.starts_with_token) {
    token_.emplace(n());
    process_token();
  }
}

void TokenVcMonitor::on_packet(sim::Packet&& p) {
  switch (p.kind) {
    case MsgKind::kSnapshot: {
      auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
      net().monitor_buffer_change(pid(), snap.bytes(), +1);
      inbox_.push_back(std::move(snap));
      if (waiting_) process_token();
      break;
    }
    case MsgKind::kToken: {
      WCP_CHECK(!token_.has_value());
      token_ = std::any_cast<VcToken>(std::move(p.payload));
      net().bump_token_hops();
      // The token is only ever sent to a red slot (Fig. 3 routing).
      WCP_CHECK(token_->color[static_cast<std::size_t>(cfg_.slot)] ==
                Color::kRed);
      process_token();
      break;
    }
    case MsgKind::kControl:
      eos_ = true;  // stream ended; if we starve now, the run ends idle
      break;
    default:
      WCP_CHECK_MSG(false, "token-VC monitor got " << to_string(p.kind));
  }
}

void TokenVcMonitor::process_token() {
  auto& tok = *token_;
  const auto s = static_cast<std::size_t>(cfg_.slot);

  // Fig. 3 while-loop: consume candidates until one survives the current
  // elimination threshold G[s].
  while (tok.color[s] == Color::kRed) {
    if (inbox_.empty()) {
      waiting_ = true;
      return;
    }
    app::VcSnapshot snap = std::move(inbox_.front());
    inbox_.pop_front();
    net().monitor_buffer_change(pid(), -snap.bytes(), -1);
    // Examining (and possibly eliminating) one candidate is O(n): the
    // snapshot was received, copied, and its own component compared.
    net().add_monitor_work(pid(), static_cast<std::int64_t>(n()));
    if (snap.vclock[s] > tok.G[s]) {
      tok.G[s] = snap.vclock[s];
      tok.color[s] = Color::kGreen;
      accepted_ = std::move(snap);
    }
  }
  waiting_ = false;
  accept_and_route();
}

void TokenVcMonitor::accept_and_route() {
  auto& tok = *token_;
  const auto s = static_cast<std::size_t>(cfg_.slot);
  const VectorClock& cand = accepted_.vclock;
  WCP_CHECK(cand.width() == n() && cand[s] == tok.G[s]);

  tok.V[s] = cand;

  // Fig. 3 for-loop: any j whose candidate state is dominated by ours
  // ((j, G[j]) happened before (s, G[s])) is eliminated.
  net().add_monitor_work(pid(), static_cast<std::int64_t>(n()));
  for (std::size_t j = 0; j < n(); ++j) {
    if (j == s) continue;
    if (cand[j] >= tok.G[j]) {
      tok.G[j] = cand[j];
      tok.color[j] = Color::kRed;
    }
  }

  const bool grouped = !cfg_.group_of_slot.empty();
  const int my_group = grouped ? cfg_.group_of_slot[s] : 0;

  // Route to the first red slot (own group only in §3.5 mode), or finish.
  int red = -1;
  for (std::size_t j = 0; j < n(); ++j) {
    if (tok.color[j] == Color::kRed &&
        (!grouped || cfg_.group_of_slot[j] == my_group)) {
      red = static_cast<int>(j);
      break;
    }
  }

  if (cfg_.observer) cfg_.observer(tok, cfg_.slot, !grouped && red < 0);

  VcToken out = std::move(tok);
  token_.reset();

  if (red >= 0) {
    const std::int64_t bits = out.bits(/*with_v=*/grouped);
    send(sim::NodeAddr::monitor(
             cfg_.slot_to_pid[static_cast<std::size_t>(red)]),
         MsgKind::kToken, std::move(out), bits);
    return;
  }

  if (grouped) {
    // No red state left inside this group: return the token to the leader,
    // which merges it with the other groups' tokens (§3.5).
    const std::int64_t bits = out.bits(/*with_v=*/true);
    send(cfg_.leader, MsgKind::kToken, std::move(out), bits);
    return;
  }

  // Single-token mode: all slots green => first WCP cut found (Thm 3.2).
  auto& shared = *cfg_.shared;
  shared.detected = true;
  shared.cut = out.G;
  shared.detect_time = net().simulator().now();
  if (cfg_.halt_apps) {
    // Distributed breakpoint: freeze the application and let the run
    // drain; the harness reads the frozen states afterwards.
    for (std::size_t p = 0; p < net().num_processes(); ++p)
      send(sim::NodeAddr::app(ProcessId(static_cast<int>(p))),
           MsgKind::kControl, app::Halt{}, /*bits=*/1);
  } else {
    net().simulator().stop();
  }
}

std::shared_ptr<SharedDetection> install_token_vc_monitors(
    sim::Network& net, const std::vector<ProcessId>& slot_to_pid,
    const VcTokenObserver& observer, bool halt_apps) {
  WCP_REQUIRE(!slot_to_pid.empty(), "empty predicate");
  auto shared = std::make_shared<SharedDetection>();
  for (std::size_t s = 0; s < slot_to_pid.size(); ++s) {
    TokenVcMonitor::Config mc;
    mc.slot = static_cast<int>(s);
    mc.slot_to_pid = slot_to_pid;
    mc.starts_with_token = (s == 0);
    mc.shared = shared;
    mc.observer = observer;
    mc.halt_apps = halt_apps;
    net.add_node(sim::NodeAddr::monitor(slot_to_pid[s]),
                 std::make_unique<TokenVcMonitor>(std::move(mc)));
  }
  return shared;
}

DetectionResult run_token_vc(const Computation& comp, const RunOptions& opts,
                             const VcTokenObserver& observer) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  sim::NetworkConfig ncfg;
  ncfg.num_processes = comp.num_processes();
  ncfg.latency = opts.latency;
  ncfg.monitor_latency = opts.monitor_latency;
  ncfg.fifo_all = opts.fifo_all;
  ncfg.seed = opts.seed;
  sim::Network net(ncfg);

  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());
  auto shared = install_token_vc_monitors(net, slot_to_pid, observer,
                                          opts.halt_on_detect);

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.compress_clocks = opts.compress_clocks;
  const auto drivers = app::install_app_drivers(net, comp, drv);

  net.start_and_run(opts.max_events);

  DetectionResult r;
  if (opts.halt_on_detect && shared->detected) {
    r.frozen_cut.reserve(drivers.size());
    for (const auto* d : drivers) r.frozen_cut.push_back(d->current_state());
  }
  r.detected = shared->detected;
  r.cut = shared->cut;
  r.detect_time = shared->detect_time;
  r.end_time = net.simulator().now();
  r.sim_events = net.simulator().events_processed();
  r.stats = net.run_stats();
  r.token_hops = net.monitor_metrics().token_hops();
  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  return r;
}

}  // namespace wcp::detect
