// Machine-readable run reports (schema "wcp-run-report/1").
//
// One record per detection run:
//   {
//     "schema": "wcp-run-report/1",
//     "bench":  "<bench or cli identifier>",
//     "params": {"N": ..., "n": ..., "m": ..., "seed": ...},
//     "metrics": { totals + full DetectionResult breakdown },
//     "bound":  <paper's asymptotic budget for this run, or null>,
//     "ratio":  <measured cost / bound, or null>
//   }
// The bench reporter (bench/bench_common.h) collects these records into
// BENCH_summary.json; `wcp_cli detect --json` emits a single record. With
// wall-clock excluded, a record is a pure function of (computation, seed,
// latency model) — the determinism property the tests pin down.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "detect/result.h"

namespace wcp::detect {

inline constexpr std::string_view kRunReportSchema = "wcp-run-report/1";

/// The experiment shape parameters every report carries (the paper's N, n,
/// m plus the run seed). Fields that do not apply to a bench stay 0.
struct ReportParams {
  std::int64_t N = 0;        ///< all processes
  std::int64_t n = 0;        ///< predicate processes
  std::int64_t m = 0;        ///< max relevant events per process
  std::uint64_t seed = 0;
  /// Canonical fault-plan spec (FaultPlan::to_string) when the run injected
  /// faults; empty — and absent from the report — otherwise.
  std::string faults;
};

/// Writes one run-report record for a simulator-hosted detection run.
/// `bound` is the paper's asymptotic budget the bench checks against and
/// `ratio` the measured-over-bound normalization; pass nullopt when the
/// bench has no single scalar bound.
void write_run_report(json::Writer& w, std::string_view bench,
                      const ReportParams& params, const DetectionResult& r,
                      std::optional<double> bound, std::optional<double> ratio,
                      bool include_wall_clock = true);

/// One flat-report metric: integer counters stay integers all the way into
/// the JSON (no double round-trip, no exponent notation); genuinely
/// fractional quantities (ratios, averages) stay doubles.
class MetricValue {
 public:
  MetricValue(int v) : kind_(Kind::kInt), int_(v) {}                 // NOLINT
  MetricValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}        // NOLINT
  MetricValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}     // NOLINT
  MetricValue(double v) : kind_(Kind::kDouble), double_(v) {}        // NOLINT

  void write(json::Writer& w) const;
  /// Numeric value as double (exact for counters up to 2^53).
  [[nodiscard]] double as_double() const;

 private:
  enum class Kind : std::uint8_t { kInt, kUint, kDouble };
  Kind kind_;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
};

/// Same record shape for experiments without a DetectionResult (e.g. the
/// adversary game or the lattice baseline): `metrics` is emitted verbatim
/// as a flat object in insertion order.
void write_run_report(
    json::Writer& w, std::string_view bench, const ReportParams& params,
    const std::vector<std::pair<std::string, MetricValue>>& metrics,
    std::optional<double> bound, std::optional<double> ratio);

/// Convenience: one record rendered to a string (indent 0 = compact line).
std::string run_report_string(std::string_view bench,
                              const ReportParams& params,
                              const DetectionResult& r,
                              std::optional<double> bound,
                              std::optional<double> ratio,
                              bool include_wall_clock = true, int indent = 2);

}  // namespace wcp::detect
