// Batch sweep runner: one trace, many detector runs, executed concurrently.
//
// A sweep is the unit of work the benches and the randomized cross-check
// tests repeat constantly: fix one computation and run a set of
// (algorithm, seed) jobs against it — every detector on one trace, or one
// detector across a seed sweep. Each job is independent (every simulator
// run builds its own sim::Network; the Computation is shared read-only), so
// the jobs fan out across a common::ThreadPool while the returned rows stay
// in job order, each row byte-identical to what a serial run produces.
//
// Job algorithms use the wcp_cli --algo vocabulary: token | multi | dd |
// dd-par | checker | lattice | lattice-online | lattice-sliced |
// definitely | definitely-sliced | oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/computation.h"

namespace wcp::detect {

/// One sweep job: which detector to run and the run seed. The seed drives
/// only simulator latency/pacing; offline detectors (lattice/sliced
/// families, oracle) ignore it but still report it.
struct SweepJob {
  std::string algo;
  std::uint64_t seed = 1;
  int groups = 2;                       ///< multi-token group count
  std::int64_t max_cuts = 10'000'000;   ///< lattice/definitely exploration cap
  /// Inner thread count for the lattice-family detectors (1 = serial,
  /// default: sweeps usually parallelize across jobs, not inside them).
  /// Rows are byte-identical for every value — the concurrent engine's
  /// serial replay guarantees it for lattice/definitely, and the sliced
  /// detectors are inherently serial.
  std::size_t threads = 1;
};

/// Outcome of one job, independent of sweep thread count.
struct SweepRow {
  std::string algo;
  std::uint64_t seed = 0;
  /// Detection verdict: detected (possibly family) or definitely.
  bool verdict = false;
  /// Detected cut, slice bottom, or definitely witness; empty when the
  /// algorithm produced none.
  std::vector<StateIndex> cut;
  /// Headline cost: cuts_explored for the offline detectors, monitor work
  /// units for the simulator-hosted ones.
  std::int64_t cost = 0;
  /// Compact wcp-run-report/1 record for the run, wall clock excluded — a
  /// pure function of (computation, algo, seed), so rows from parallel and
  /// serial sweeps compare byte-for-byte.
  std::string report;
};

/// Runs every job against `comp`. `threads`: 1 = serial, 0 =
/// common::ThreadPool::default_threads(), otherwise that many lanes. Rows
/// are returned in job order and are identical for every thread count.
std::vector<SweepRow> run_sweep(const Computation& comp,
                                const std::vector<SweepJob>& jobs,
                                std::size_t threads = 0);

/// Cartesian helper: one job per (algo, seed), algos-major order.
std::vector<SweepJob> cross_jobs(const std::vector<std::string>& algos,
                                 const std::vector<std::uint64_t>& seeds);

}  // namespace wcp::detect
