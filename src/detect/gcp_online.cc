#include "detect/gcp_online.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

GcpChecker::GcpChecker(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "checker needs shared detection state");
  queues_.resize(n());
  in_dirty_.assign(n(), false);
}

void GcpChecker::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "GCP checker got unexpected " << to_string(p.kind));
  if (p.kind == MsgKind::kControl) return;

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  WCP_CHECK_MSG(!snap.sent_to.empty(),
                "GCP checker needs channel-count snapshots");
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);
  net().add_monitor_work(coord, static_cast<std::int64_t>(n()));

  if (slot_of_pid_.empty()) {
    slot_of_pid_.assign(net().num_processes(), -1);
    for (std::size_t s = 0; s < n(); ++s)
      slot_of_pid_[cfg_.slot_to_pid[s].idx()] = static_cast<int>(s);
  }
  const int slot = slot_of_pid_.at(p.from.pid.idx());
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);

  auto& q = queues_[static_cast<std::size_t>(slot)];
  q.push_back(std::move(snap));
  if (q.size() == 1 && !in_dirty_[static_cast<std::size_t>(slot)]) {
    dirty_.push_back(static_cast<std::size_t>(slot));
    in_dirty_[static_cast<std::size_t>(slot)] = true;
  }
  process();
}

void GcpChecker::pop_head(std::size_t s) {
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, -queues_[s].front().bytes(), -1);
  queues_[s].pop_front();
  ++eliminations_;
  if (!queues_[s].empty() && !in_dirty_[s]) {
    dirty_.push_back(s);
    in_dirty_[s] = true;
  }
}

void GcpChecker::process() {
  const ProcessId coord(static_cast<int>(net().num_processes()));

  while (true) {
    // Phase 1: consistency eliminations (identical to the WCP checker).
    while (!dirty_.empty()) {
      const std::size_t s = dirty_.front();
      dirty_.pop_front();
      in_dirty_[s] = false;
      if (queues_[s].empty()) continue;

      const VectorClock& head_s = queues_[s].front().vclock;
      bool s_eliminated = false;
      for (std::size_t t = 0; t < n() && !s_eliminated; ++t) {
        if (t == s || queues_[t].empty()) continue;
        const VectorClock& head_t = queues_[t].front().vclock;
        net().add_monitor_work(coord, 1);
        if (head_t[s] >= head_s[s]) {
          pop_head(s);
          s_eliminated = true;
        } else if (head_s[t] >= head_t[t]) {
          pop_head(t);
        }
      }
    }

    for (std::size_t s = 0; s < n(); ++s)
      if (queues_[s].empty()) return;  // wait for more snapshots

    // Phase 2: channel-predicate eliminations on the (consistent) head cut.
    bool channel_violation = false;
    for (const ChannelPredicate& cp : cfg_.channels) {
      ++channel_evals_;
      net().add_monitor_work(coord, 1);
      const auto from_slot =
          static_cast<std::size_t>(slot_of_pid_.at(cp.from.idx()));
      const auto to_slot =
          static_cast<std::size_t>(slot_of_pid_.at(cp.to.idx()));
      const std::int64_t transit =
          queues_[from_slot].front().sent_to[cp.to.idx()] -
          queues_[to_slot].front().recv_from[cp.from.idx()];
      if (cp.holds(transit)) continue;
      const std::size_t victim =
          cp.kind == ChannelPredicate::Kind::kAtLeast ? from_slot : to_slot;
      pop_head(victim);
      channel_violation = true;
      break;
    }
    if (channel_violation) continue;  // re-run consistency with the new head

    auto& shared = *cfg_.shared;
    shared.detected = true;
    shared.cut.resize(n());
    for (std::size_t s = 0; s < n(); ++s)
      shared.cut[s] = queues_[s].front().vclock[s];
    shared.detect_time = net().simulator().now();
    net().simulator().stop();
    return;
  }
}

DetectionResult run_gcp_centralized(const Computation& comp,
                                    std::span<const ChannelPredicate> channels,
                                    const RunOptions& opts) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");
  for (const auto& cp : channels) {
    WCP_REQUIRE(comp.predicate_slot(cp.from) >= 0 &&
                    comp.predicate_slot(cp.to) >= 0,
                "channel endpoint of " << cp
                                       << " is not a predicate process");
  }

  sim::Network net(network_config(opts, comp.num_processes()));

  auto shared = std::make_shared<SharedDetection>();

  GcpChecker::Config cc;
  cc.slot_to_pid.assign(preds.begin(), preds.end());
  cc.channels.assign(channels.begin(), channels.end());
  cc.shared = shared;
  net.add_node(sim::NodeAddr::coordinator(),
               std::make_unique<GcpChecker>(std::move(cc)));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.include_channel_counts = true;
  app::install_app_drivers(
      net, comp, drv, [](ProcessId) { return sim::NodeAddr::coordinator(); });

  net.start_and_run(opts.max_events);

  DetectionResult r;
  finish_result(r, net, *shared);
  return r;
}

}  // namespace wcp::detect
