// Incremental detection cores — the WCP state machines extracted from the
// simulator-hosted checkers so the streaming service (src/serve) can run
// them over wire-fed snapshot streams with frontier garbage collection.
//
// Three cores live here (the fourth, slice::SlicerCore, sits next to its
// sim host in slice/online_slicer.h):
//
//   TokenCore        — Fig. 3 of the paper run incrementally: one token
//                      walks the red slots consuming queued candidates;
//                      stalls (instead of starving) when the holder's
//                      candidate queue runs dry mid-stream.
//   CentralizedCore  — Garg & Waldecker queue-head elimination, extracted
//                      verbatim from CentralizedChecker::process().
//   LatticeOnlineCore— the online Cooper-Marzullo level-ordered lattice
//                      exploration, extracted verbatim from
//                      LatticeChecker::drain(), plus a collect() that
//                      retires visited cuts below the GC frontier.
//
// Extraction fidelity: the sim::Node hosts (CentralizedChecker,
// LatticeChecker) delegate to these cores and install CoreHooks that
// forward work/buffer accounting into the network metrics at exactly the
// old call sites, so every simulator run — verdict, cut, metrics, storage
// stats — is byte-identical to the pre-extraction implementation
// (tests/centralized_test, tests/lattice_online_test).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "app/state_stream.h"
#include "common/cut_storage.h"
#include "common/types.h"

namespace wcp::detect {

/// Fig. 3 token algorithm over a candidate stream. Positions whose local
/// predicate is false are skipped on arrival; the token stalls whenever the
/// holder's queue is empty and the slot's stream has not ended, and starves
/// (final verdict: not detected) once it has.
class TokenCore final : public app::StreamCore {
 public:
  TokenCore(const app::StateStream& stream, app::CoreHooks hooks);

  void on_state(std::size_t s) override;
  void on_eos(std::size_t s) override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool detected() const override { return detected_; }
  [[nodiscard]] const std::vector<StateIndex>& cut() const override {
    return cut_;
  }
  [[nodiscard]] StateIndex frontier(std::size_t s) const override;
  [[nodiscard]] std::int64_t resident_bytes() const override;

  [[nodiscard]] std::int64_t token_hops() const { return token_hops_; }
  [[nodiscard]] std::int64_t candidates_examined() const {
    return candidates_examined_;
  }

 private:
  void pump();
  [[nodiscard]] std::size_t n() const { return queue_.size(); }

  const app::StateStream& stream_;
  app::CoreHooks hooks_;
  std::vector<std::deque<StateIndex>> queue_;  // candidate positions
  std::vector<StateIndex> g_;                  // Fig. 3 G vector
  std::vector<bool> red_;
  std::size_t holder_ = 0;
  bool done_ = false;
  bool detected_ = false;
  std::vector<StateIndex> cut_;
  std::int64_t token_hops_ = 0;
  std::int64_t candidates_examined_ = 0;
};

/// Garg & Waldecker centralized checker over a candidate stream.
class CentralizedCore final : public app::StreamCore {
 public:
  CentralizedCore(const app::StateStream& stream, app::CoreHooks hooks);

  void on_state(std::size_t s) override;
  void on_eos(std::size_t s) override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool detected() const override { return detected_; }
  [[nodiscard]] const std::vector<StateIndex>& cut() const override {
    return cut_;
  }
  [[nodiscard]] StateIndex frontier(std::size_t s) const override;
  [[nodiscard]] std::int64_t resident_bytes() const override;

  [[nodiscard]] std::int64_t eliminations() const { return eliminations_; }

 private:
  void process();
  void pop_head(std::size_t s);
  [[nodiscard]] std::size_t n() const { return queue_.size(); }

  const app::StateStream& stream_;
  app::CoreHooks hooks_;
  std::vector<std::deque<StateIndex>> queue_;  // candidate positions
  std::deque<std::size_t> dirty_;  // slots whose head needs comparison
  std::vector<bool> in_dirty_;
  std::int64_t eliminations_ = 0;
  bool done_ = false;
  bool detected_ = false;
  std::vector<StateIndex> cut_;
};

/// Online Cooper-Marzullo lattice exploration over an all-states stream
/// (position == state index). See detect/lattice_online.h for the search
/// structure; this core adds eos-driven termination (the search is
/// exhausted once no active cut remains) and frontier GC over the visited
/// arena.
class LatticeOnlineCore final : public app::StreamCore {
 public:
  LatticeOnlineCore(const app::StateStream& stream, app::CoreHooks hooks,
                    std::int64_t max_cuts = -1);

  void on_state(std::size_t s) override;
  void on_eos(std::size_t s) override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool detected() const override { return detected_; }
  [[nodiscard]] const std::vector<StateIndex>& cut() const override {
    return cut_;
  }
  [[nodiscard]] StateIndex frontier(std::size_t s) const override;
  void collect(std::span<const StateIndex> floor) override;
  [[nodiscard]] std::int64_t resident_bytes() const override;

  /// Exploration exceeded max_cuts: the (non-)verdict is unreliable.
  [[nodiscard]] bool truncated() const { return gave_up_; }
  [[nodiscard]] std::int64_t cuts_explored() const { return cuts_explored_; }
  [[nodiscard]] std::int64_t max_frontier() const { return max_frontier_; }
  [[nodiscard]] std::int64_t cuts_retired() const { return cuts_retired_; }
  [[nodiscard]] CutStorageStats storage() const;

 private:
  void drain();
  void enqueue(CutHandle h);
  void check_exhausted();
  [[nodiscard]] bool available(const std::vector<StateIndex>& cut) const;
  [[nodiscard]] std::size_t n() const { return stream_.slots(); }

  const app::StateStream& stream_;
  app::CoreHooks hooks_;
  std::int64_t max_cuts_ = -1;

  // Min-heap on (level, seq) kept as a std::push_heap/pop_heap vector so
  // collect() can walk the live entries; pop order is bit-identical to the
  // std::priority_queue it replaces (same comparator, same algorithm).
  struct Entry {
    StateIndex level;
    std::int64_t seq;
    CutHandle cut;
    bool operator>(const Entry& o) const {
      return level != o.level ? level > o.level : seq > o.seq;
    }
  };
  std::vector<Entry> ready_;
  std::int64_t seq_ = 0;
  std::map<std::pair<std::size_t, StateIndex>, std::vector<CutHandle>>
      parked_;
  CutArena visited_arena_;
  CutTable visited_table_;
  CutStorageStats retired_storage_;  // stats of arenas replaced by collect()
  std::vector<StateIndex> scratch_;  // popped cut, widened; reused
  std::int64_t cuts_explored_ = 0;
  std::int64_t max_frontier_ = 0;
  std::int64_t cuts_retired_ = 0;
  bool gave_up_ = false;
  bool done_ = false;
  bool detected_ = false;
  std::vector<StateIndex> cut_;
};

}  // namespace wcp::detect
