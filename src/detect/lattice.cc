#include "detect/lattice.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/cut_hash.h"
#include "common/cut_storage.h"
#include "common/error.h"
#include "common/lockfree_table.h"
#include "common/thread_pool.h"

namespace wcp::detect {

namespace {

using Cut = std::vector<StateIndex>;

// ---- flat cut storage -------------------------------------------------------
//
// Every visited cut lives exactly once in a CutArena (packed 32-bit
// components, dense handles); the visited set / parent map are a CutTable
// plus a handle-indexed parent vector. One consequence the serial code
// below leans on: serial BFS needs no frontier queue at all — cuts enter
// the arena in exactly the order the queue would pop them, so the frontier
// is the arena suffix [head, size) and its size is size() - head.

/// BFS parent offset of one interned cut: the reference of its predecessor
/// (the bottom cut references itself) plus which slot the advance took.
/// Witness paths are rebuilt from these 12-byte links on demand — the full
/// predecessor cuts are never retained (ltsmin-style trace reconstruction).
template <typename Ref>
struct ParentLink {
  Ref parent;
  std::uint32_t slot;
};

inline constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

/// Walks the parent offsets from `top` back to the bottom cut and returns
/// the advanced slot of every step, bottom first.
template <typename Ref, typename LinkOf>
std::vector<std::uint32_t> collect_path_slots(Ref top, const LinkOf& link_of) {
  std::vector<std::uint32_t> slots;
  for (Ref c = top;;) {
    const auto link = link_of(c);
    if (link.parent == c) break;
    slots.push_back(link.slot);
    c = link.parent;
  }
  std::reverse(slots.begin(), slots.end());
  return slots;
}

/// When definitely == false, the witness is the first cut on the avoiding
/// path that diverges past the pointwise-minimal satisfying cut (the bottom
/// cut when the predicate never holds). Each path step advances exactly one
/// slot of a previously dominated cut, so only that slot can break the
/// domination — the full cuts never need to be compared.
Cut witness_from_path(const Computation& comp, std::size_t n,
                      std::span<const std::uint32_t> slots) {
  if (const auto min_sat = comp.first_wcp_cut()) {
    Cut cur(n, 1);
    for (const std::uint32_t s : slots) {
      cur[s] += 1;
      if (cur[s] > (*min_sat)[s]) return cur;
    }
  }
  return Cut(n, 1);
}

// ---- lock-free concurrent exploration (ALGORITHMS.md §15) ------------------
//
// The concurrent detectors split the work into two passes:
//
//   Concurrent phase — lanes pop cut handles from a work-stealing frontier
//   (common::WorkFrontier) in arbitrary order and expand them: each
//   consistent successor is interned exactly once into a shared
//   SegmentedCutStore through the LockFreeCutTable (stage → CAS →
//   publish), its hash derived in O(1) from the parent's via
//   ZobristCutHash::advance, and the resulting globally-canonical handle
//   recorded in the parent's slot-indexed successor array. Newly inserted
//   cuts are pushed back to the frontier. The output is the *successor
//   graph* of the explored lattice region — a pure function of the trace,
//   independent of exploration order.
//
//   Replay phase (serial, deterministic) — a plain FIFO BFS over the
//   recorded successor arrays, walking handles exactly as the serial
//   detector walks cuts: pops in insertion order, successors scanned in
//   slot order, first-encounter parent links. Every counter the serial
//   loop maintains (cuts_explored, max_frontier, truncation position,
//   witness path) is recomputed here over identical structure, which makes
//   the result — verdict, counters, witness, JSON report — byte-identical
//   to the serial engine at any thread count. The differential sweep in
//   tests/flat_storage_equiv_test.cc enforces this.
//
// Early-stop soundness. The serial BFS stops at the first satisfying pop
// or at the max_cuts-th pop; a barrier-free exploration has no "first pop"
// and would otherwise run the whole lattice. Two monotonically decreasing
// level caps bound the expansion, and a cut is expanded only while its
// level is <= both:
//
//   sat_cap (possibly mode): the minimum level of any satisfying cut
//   interned so far. BFS pops are level-nondecreasing, so the serial loop
//   never expands a cut deeper than the first satisfying level L_min; and
//   since no satisfying cut exists below L_min, sat_cap >= L_min at every
//   moment — the cap can only prune work the serial loop never does.
//
//   trunc_cap (max_cuts >= 0): per-level atomic intern counters feed a
//   periodic prefix-sum scan; when the counted prefix through level l
//   reaches max_cuts, the cap drops to l. Counts only ever under-estimate
//   the full per-level lattice population, and the serial loop expands a
//   level-L cut only if the full population of levels < L is under
//   max_cuts (it pops whole levels in order), so again trunc_cap >= every
//   level the serial loop expands.
//
// Together: every cut the serial loop expands is expanded here (the replay
// asserts it), and the replay — which stops exactly where the serial loop
// stops — never reads an unexpanded successor array.

/// Atomic running-minimum, relaxed: the caps only gate work pruning, never
/// data visibility (handles travel through the frontier's mutexes).
void fetch_min(std::atomic<std::uint32_t>& a, std::uint32_t v) {
  std::uint32_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

class ConcurrentEngine {
 public:
  ConcurrentEngine(const Computation& comp, std::int64_t max_cuts,
                   std::size_t lanes, bool definitely_mode)
      : comp_(comp),
        procs_(comp.predicate_processes()),
        n_(procs_.size()),
        max_cuts_(max_cuts),
        definitely_mode_(definitely_mode),
        store_(n_, lanes),
        table_(lanes),
        frontier_(lanes),
        scratch_(lanes, std::vector<std::uint32_t>(n_)),
        batch_(lanes),
        ops_(lanes) {
    // false_count is a uint8: enough for any real predicate width, checked
    // so the concurrent path is never silently wrong (the dispatcher falls
    // back to the serial engine instead of constructing this).
    WCP_REQUIRE(n_ >= 1 && n_ <= 255,
                "concurrent engine requires 1..255 predicate slots");
    std::uint64_t total_states = 0;
    for (std::size_t s = 0; s < n_; ++s)
      total_states += static_cast<std::uint64_t>(comp.num_states(procs_[s]));
    level_max_ = total_states - n_;
    WCP_REQUIRE(level_max_ < kNoCut, "lattice deeper than 2^32 levels");
    if (max_cuts_ >= 0) {
      level_counts_ =
          std::vector<std::atomic<std::uint32_t>>(level_max_ + 1);
      // A cut at level L is the serial loop's (full prefix of levels < L)
      // + 1-th pop at the earliest, so nothing past level max_cuts - 1 is
      // ever expanded — the starting cap before any counting happens.
      trunc_cap_.store(
          max_cuts_ == 0
              ? 0
              : static_cast<std::uint32_t>(std::min<std::int64_t>(
                    max_cuts_ - 1, static_cast<std::int64_t>(level_max_))),
          std::memory_order_relaxed);
    }
  }

  /// Concurrent phase: explore until the frontier drains. The bottom cut
  /// must not satisfy the predicate in definitely mode (callers handle
  /// that case before building the engine).
  void run(common::ThreadPool& pool) {
    auto& bottom = scratch_[0];
    std::fill(bottom.begin(), bottom.end(), 1u);
    std::uint8_t fc = 0;
    for (std::size_t s = 0; s < n_; ++s)
      if (!comp_.local_pred(procs_[s], 1)) ++fc;
    WCP_CHECK_MSG(!definitely_mode_ || fc > 0,
                  "definitely engine started on a satisfying bottom cut");
    const ZobristCutHash zob;
    const auto r = table_.intern(0, store_, bottom, zob(bottom), 0, fc);
    WCP_CHECK_MSG(r.outcome == LockFreeCutTable::Outcome::kInserted,
                  "bottom cut intern failed");
    bottom_ = r.handle;
    if (!level_counts_.empty())
      level_counts_[0].store(1, std::memory_order_relaxed);
    if (fc == 0) {
      // possibly mode, satisfied at the bottom: the serial loop breaks on
      // its first pop — nothing is ever expanded.
      fetch_min(sat_cap_, 0);
      return;
    }
    frontier_.seed(bottom_);
    pool.parallel_for(
        frontier_.lanes(),
        [&](std::size_t b, std::size_t e) {
          for (std::size_t lane = b; lane < e; ++lane)
            frontier_.run_lane(
                lane, [this, lane](std::uint32_t h) { expand(lane, h); });
        },
        /*grain=*/1);
  }

  LatticeResult replay_lattice() const;
  DefinitelyResult replay_definitely() const;

 private:
  [[nodiscard]] std::uint32_t cap() const {
    return std::min(sat_cap_.load(std::memory_order_relaxed),
                    trunc_cap_.load(std::memory_order_relaxed));
  }

  void expand(std::size_t lane, CutHandle h);
  void tighten_trunc_cap();

  struct ReplayMaps;

  const Computation& comp_;
  std::span<const ProcessId> procs_;
  std::size_t n_;
  std::int64_t max_cuts_;
  bool definitely_mode_;
  std::uint64_t level_max_ = 0;
  CutHandle bottom_ = kNoCut;

  SegmentedCutStore store_;
  LockFreeCutTable table_;
  common::WorkFrontier frontier_;

  std::vector<std::vector<std::uint32_t>> scratch_;  // per-lane cut buffer
  std::vector<std::vector<std::uint32_t>> batch_;    // per-lane push batch
  struct alignas(64) OpCounter {
    std::uint64_t v = 0;
  };
  std::vector<OpCounter> ops_;  // per-lane expansions, for cap tightening

  std::atomic<std::uint32_t> sat_cap_{0xFFFFFFFFu};
  std::atomic<std::uint32_t> trunc_cap_{0xFFFFFFFFu};
  std::vector<std::atomic<std::uint32_t>> level_counts_;
  std::mutex tighten_mu_;
};

void ConcurrentEngine::expand(std::size_t lane, CutHandle h) {
  const std::uint32_t lvl = store_.level(h);
  // Pruned, not expanded: the caps only ever drop below a level the serial
  // loop never expands, so the replay cannot reach this cut's successors.
  if (lvl > cap()) return;

  const auto cut = store_.cut(h);
  auto& buf = scratch_[lane];
  std::copy(cut.begin(), cut.end(), buf.begin());
  const std::uint64_t parent_hash = store_.hash(h);
  const std::uint8_t parent_fc = store_.false_count(h);
  const auto succ = store_.succ(h);
  auto& out = batch_[lane];
  out.clear();

  for (std::size_t s = 0; s < n_; ++s) {
    succ[s] = kNoCut;
    const auto ks = static_cast<StateIndex>(buf[s]) + 1;
    if (ks > comp_.num_states(procs_[s])) continue;
    bool consistent = true;
    for (std::size_t t = 0; t < n_ && consistent; ++t) {
      if (t == s) continue;
      const auto kt = static_cast<StateIndex>(buf[t]);
      if (comp_.happened_before(procs_[s], ks, procs_[t], kt) ||
          comp_.happened_before(procs_[t], kt, procs_[s], ks))
        consistent = false;
    }
    if (!consistent) continue;
    // Successor predicate state in O(1): only slot s changed.
    const auto fc = static_cast<std::uint8_t>(
        parent_fc - (comp_.local_pred(procs_[s], ks - 1) ? 0 : 1) +
        (comp_.local_pred(procs_[s], ks) ? 0 : 1));
    // definitely mode explores only predicate-avoiding cuts: satisfying
    // successors are filtered before interning, exactly like the serial
    // loop's `continue` — they must not enter the visited set at all.
    if (definitely_mode_ && fc == 0) continue;
    const std::uint64_t hash =
        ZobristCutHash::advance(parent_hash, s, buf[s], buf[s] + 1);
    buf[s] += 1;
    LockFreeCutTable::Result r;
    for (;;) {
      r = table_.intern(lane, store_, buf, hash, lvl + 1, fc);
      if (r.outcome != LockFreeCutTable::Outcome::kTableFull) break;
      frontier_.quiesce([this] { table_.grow(store_); });
    }
    buf[s] -= 1;
    succ[s] = r.handle;
    if (r.outcome == LockFreeCutTable::Outcome::kInserted) {
      if (!level_counts_.empty())
        level_counts_[lvl + 1].fetch_add(1, std::memory_order_relaxed);
      if (!definitely_mode_ && fc == 0)
        // Satisfying cuts are terminal (the serial loop breaks at its
        // first satisfying pop, never expanding one) — don't push, but do
        // drop the satisfaction cap to their level.
        fetch_min(sat_cap_, lvl + 1);
      else
        out.push_back(r.handle);
    }
  }
  store_.mark_expanded(h);
  if (!out.empty()) frontier_.push_batch(lane, out);
  if (!level_counts_.empty() && (++ops_[lane].v & 1023) == 0)
    tighten_trunc_cap();
}

void ConcurrentEngine::tighten_trunc_cap() {
  // Opportunistic: one lane scans at a time, the rest skip — the cap is an
  // optimization, not a correctness gate (the starting max_cuts - 1 bound
  // is already sound).
  if (!tighten_mu_.try_lock()) return;
  const std::lock_guard lk(tighten_mu_, std::adopt_lock);
  const auto limit = static_cast<std::uint64_t>(max_cuts_);
  const std::uint32_t cur = trunc_cap_.load(std::memory_order_relaxed);
  std::uint64_t prefix = 0;
  for (std::size_t l = 0; l < level_counts_.size() &&
                          l <= static_cast<std::size_t>(cur);
       ++l) {
    prefix += level_counts_[l].load(std::memory_order_relaxed);
    if (prefix >= limit) {
      // The counted prefix through level l already reaches max_cuts, and
      // counts never exceed the true lattice population, so the serial
      // loop truncates before expanding anything past level l.
      fetch_min(trunc_cap_, static_cast<std::uint32_t>(l));
      return;
    }
  }
}

LatticeResult detect_lattice_serial(const Computation& comp,
                                    std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  LatticeResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  CutArena arena(n);
  CutTable visited;
  const CutHash hasher;
  // links[h] = parent offset of the cut with handle h, enough to rebuild
  // the BFS path to any visited cut without storing predecessor cuts.
  std::vector<ParentLink<CutHandle>> links;

  // The initial cut (all 1s) is always consistent: state 1 has no receives
  // before it, so nothing happened before it on another process. From here
  // on, `scratch` is the only live std::vector — every visited cut is
  // interned into the arena, and the BFS frontier is the arena suffix of
  // not-yet-explored handles.
  Cut scratch(n, 1);
  visited.intern(arena, scratch, hasher(scratch));
  links.push_back({0, kNoSlot});

  for (std::size_t head = 0; head < arena.size(); ++head) {
    res.max_frontier = std::max(
        res.max_frontier, static_cast<std::int64_t>(arena.size() - head));
    arena.copy_to(static_cast<CutHandle>(head), scratch);
    ++res.cuts_explored;

    if (satisfies(scratch)) {
      res.detected = true;
      res.cut = scratch;
      res.witness_path = collect_path_slots(
          static_cast<CutHandle>(head),
          [&](CutHandle c) { return links[c]; });
      break;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      break;
    }

    // Successors: advance one component; the result is a consistent cut iff
    // no current component happened before the advanced state's successor
    // ... i.e. the advanced state is not happened-after-excluded. Full
    // pairwise check against the advanced component suffices because the
    // rest of the cut was already consistent. The advance is done in place
    // on `scratch` and undone after the intern — no temporary cut.
    for (std::size_t s = 0; s < n; ++s) {
      if (scratch[s] + 1 > comp.num_states(procs[s])) continue;
      scratch[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], scratch[s], procs[t], scratch[t]) ||
            comp.happened_before(procs[t], scratch[t], procs[s], scratch[s]))
          consistent = false;
      }
      if (consistent &&
          visited.intern(arena, scratch, hasher(scratch)).inserted)
        links.push_back(
            {static_cast<CutHandle>(head), static_cast<std::uint32_t>(s)});
      scratch[s] -= 1;
    }
  }
  arena.add_stats(res.storage);
  visited.add_stats(res.storage);
  return res;
}

/// Per-lane seen flags and parent links for the replay BFS, indexed by the
/// (lane, local) decomposition of the store's handles.
struct ConcurrentEngine::ReplayMaps {
  explicit ReplayMaps(const SegmentedCutStore& store)
      : seen(store.lanes()), parent(store.lanes()) {
    for (std::size_t lane = 0; lane < store.lanes(); ++lane) {
      seen[lane].assign(store.lane_count(lane), 0);
      parent[lane].assign(store.lane_count(lane), {kNoCut, kNoSlot});
    }
  }
  [[nodiscard]] bool visit(CutHandle h, CutHandle from, std::uint32_t slot) {
    auto& flag = seen[h >> SegmentedCutStore::kLocalBits]
                     [h & SegmentedCutStore::kLocalMask];
    if (flag) return false;
    flag = 1;
    parent[h >> SegmentedCutStore::kLocalBits]
          [h & SegmentedCutStore::kLocalMask] = {from, slot};
    return true;
  }
  [[nodiscard]] ParentLink<CutHandle> link(CutHandle h) const {
    return parent[h >> SegmentedCutStore::kLocalBits]
                 [h & SegmentedCutStore::kLocalMask];
  }
  std::vector<std::vector<std::uint8_t>> seen;
  std::vector<std::vector<ParentLink<CutHandle>>> parent;
};

LatticeResult ConcurrentEngine::replay_lattice() const {
  LatticeResult res;
  ReplayMaps maps(store_);
  std::vector<CutHandle> queue;
  queue.reserve(store_.total_cuts());
  (void)maps.visit(bottom_, bottom_, kNoSlot);
  queue.push_back(bottom_);

  for (std::size_t head = 0; head < queue.size(); ++head) {
    // queue mirrors the serial arena: pops in insertion order, so the
    // frontier is the suffix [head, size).
    res.max_frontier = std::max(
        res.max_frontier, static_cast<std::int64_t>(queue.size() - head));
    const CutHandle h = queue[head];
    ++res.cuts_explored;
    if (store_.satisfying(h)) {
      res.detected = true;
      res.cut = store_.materialize(h);
      res.witness_path = collect_path_slots(
          h, [&](CutHandle c) { return maps.link(c); });
      break;
    }
    if (max_cuts_ >= 0 && res.cuts_explored >= max_cuts_) {
      res.truncated = true;
      break;
    }
    WCP_CHECK_MSG(store_.expanded(h),
                  "concurrent phase pruned a cut the serial order expands");
    const auto succ = store_.succ(h);
    for (std::size_t s = 0; s < n_; ++s)
      if (succ[s] != kNoCut &&
          maps.visit(succ[s], h, static_cast<std::uint32_t>(s)))
        queue.push_back(succ[s]);
  }
  store_.add_stats(res.storage);
  table_.add_stats(res.storage);
  return res;
}

DefinitelyResult ConcurrentEngine::replay_definitely() const {
  DefinitelyResult res;
  res.definitely = true;  // until the top cut proves reachable
  ReplayMaps maps(store_);
  std::vector<CutHandle> queue;
  queue.reserve(store_.total_cuts());
  (void)maps.visit(bottom_, bottom_, kNoSlot);
  queue.push_back(bottom_);

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const CutHandle h = queue[head];
    ++res.cuts_explored;
    // The top cut is the unique cut at the maximal level.
    if (store_.level(h) == level_max_) {
      res.definitely = false;  // an observation avoided the predicate
      res.witness_path = collect_path_slots(
          h, [&](CutHandle c) { return maps.link(c); });
      res.witness = witness_from_path(comp_, n_, res.witness_path);
      break;
    }
    if (max_cuts_ >= 0 && res.cuts_explored >= max_cuts_) {
      res.truncated = true;
      break;
    }
    WCP_CHECK_MSG(store_.expanded(h),
                  "concurrent phase pruned a cut the serial order expands");
    const auto succ = store_.succ(h);
    for (std::size_t s = 0; s < n_; ++s)
      if (succ[s] != kNoCut &&
          maps.visit(succ[s], h, static_cast<std::uint32_t>(s)))
        queue.push_back(succ[s]);
  }
  store_.add_stats(res.storage);
  table_.add_stats(res.storage);
  return res;
}

LatticeResult detect_lattice_concurrent(const Computation& comp,
                                        std::int64_t max_cuts,
                                        std::size_t threads) {
  common::ThreadPool pool(threads);
  ConcurrentEngine engine(
      comp, max_cuts,
      std::min(pool.num_threads(), SegmentedCutStore::kMaxLanes),
      /*definitely_mode=*/false);
  engine.run(pool);
  return engine.replay_lattice();
}

DefinitelyResult detect_definitely_serial(const Computation& comp,
                                          std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  DefinitelyResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  // Search for an observation that AVOIDS the predicate: BFS through
  // non-satisfying consistent cuts. If the top cut is reachable (or is
  // itself non-satisfying while reachable), some observation misses the
  // predicate => not definitely.
  Cut scratch(n, 1);
  if (satisfies(scratch)) {
    // Every observation starts at the bottom cut.
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  CutArena arena(n);
  CutTable visited;
  const CutHash hasher;
  // links[h] = BFS parent offset of the cut with handle h (the bottom cut
  // maps to itself) so the avoiding observation can be reconstructed for
  // the witness. Handles are dense insertion indices, so a plain vector
  // replaces the old cut-keyed parent map.
  std::vector<ParentLink<CutHandle>> links;
  visited.intern(arena, scratch, hasher(scratch));
  links.push_back({0, kNoSlot});

  res.definitely = true;  // until the top cut proves reachable
  for (std::size_t head = 0; head < arena.size(); ++head) {
    arena.copy_to(static_cast<CutHandle>(head), scratch);
    ++res.cuts_explored;
    if (scratch == top) {
      res.definitely = false;  // an observation avoided the predicate
      res.witness_path = collect_path_slots(
          static_cast<CutHandle>(head),
          [&](CutHandle c) { return links[c]; });
      res.witness = witness_from_path(comp, n, res.witness_path);
      break;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      break;
    }

    for (std::size_t s = 0; s < n; ++s) {
      if (scratch[s] + 1 > comp.num_states(procs[s])) continue;
      scratch[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], scratch[s], procs[t], scratch[t]) ||
            comp.happened_before(procs[t], scratch[t], procs[s], scratch[s]))
          consistent = false;
      }
      if (consistent && !satisfies(scratch)) {  // blocked by the WCP
        if (visited.intern(arena, scratch, hasher(scratch)).inserted)
          links.push_back(
              {static_cast<CutHandle>(head), static_cast<std::uint32_t>(s)});
      }
      scratch[s] -= 1;
    }
  }
  // Fell off the loop: every avoiding path got stuck before the top — all
  // observations hit the predicate (res.definitely stayed true).
  arena.add_stats(res.storage);
  visited.add_stats(res.storage);
  return res;
}

DefinitelyResult detect_definitely_concurrent(const Computation& comp,
                                              std::int64_t max_cuts,
                                              std::size_t threads) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  // Bottom-satisfies early return, byte-identical to the serial prologue
  // (the engine requires a non-satisfying bottom in definitely mode).
  bool bottom_sat = true;
  for (std::size_t s = 0; s < n && bottom_sat; ++s)
    if (!comp.local_pred(procs[s], 1)) bottom_sat = false;
  if (bottom_sat) {
    DefinitelyResult res;
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  common::ThreadPool pool(threads);
  ConcurrentEngine engine(
      comp, max_cuts,
      std::min(pool.num_threads(), SegmentedCutStore::kMaxLanes),
      /*definitely_mode=*/true);
  engine.run(pool);
  return engine.replay_definitely();
}

}  // namespace

LatticeResult detect_lattice(const Computation& comp, std::int64_t max_cuts,
                             std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  // Materialize the trace store up front: the parallel path must not race
  // on the lazy build, and doing it here for the serial path too keeps the
  // reported trace-store stats identical across thread counts.
  (void)comp.trace_store();
  // The concurrent engine packs the predicate-false count into a byte;
  // wider predicates (absurd in practice) take the serial path, which is
  // result-identical anyway.
  LatticeResult res =
      threads <= 1 || procs.size() > 255
          ? detect_lattice_serial(comp, max_cuts)
          : detect_lattice_concurrent(comp, max_cuts, threads);
  res.trace_store = comp.trace_store_stats();
  return res;
}

DefinitelyResult detect_definitely(const Computation& comp,
                                   std::int64_t max_cuts,
                                   std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  (void)comp.trace_store();
  DefinitelyResult res =
      threads <= 1 || procs.size() > 255
          ? detect_definitely_serial(comp, max_cuts)
          : detect_definitely_concurrent(comp, max_cuts, threads);
  res.trace_store = comp.trace_store_stats();
  return res;
}

std::vector<std::vector<StateIndex>> materialize_witness_path(
    std::size_t n, std::span<const std::uint32_t> path) {
  std::vector<std::vector<StateIndex>> cuts;
  cuts.reserve(path.size() + 1);
  cuts.emplace_back(n, 1);
  for (const std::uint32_t s : path) {
    WCP_REQUIRE(s < n, "witness path slot " << s << " out of range for width "
                                            << n);
    std::vector<StateIndex> nxt = cuts.back();
    nxt[s] += 1;
    cuts.push_back(std::move(nxt));
  }
  return cuts;
}

}  // namespace wcp::detect
