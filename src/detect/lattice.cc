#include "detect/lattice.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/cut_hash.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace wcp::detect {

namespace {

using Cut = std::vector<StateIndex>;

/// When definitely == false, the witness is the first cut on the avoiding
/// path that diverges past the pointwise-minimal satisfying cut (the bottom
/// cut when the predicate never holds). `parent_of` must map every visited
/// cut to its BFS predecessor (the bottom cut to itself).
Cut reconstruct_witness(const Computation& comp, std::size_t n, const Cut& top,
                        const std::function<const Cut&(const Cut&)>& parent_of) {
  std::vector<Cut> path;
  for (Cut c = top;;) {
    path.push_back(c);
    const Cut& p = parent_of(c);
    if (p == c) break;
    c = p;
  }
  std::reverse(path.begin(), path.end());
  Cut witness = path.front();  // bottom
  if (const auto min_sat = comp.first_wcp_cut()) {
    const auto leq = [&](const Cut& a) {
      for (std::size_t s = 0; s < n; ++s)
        if (a[s] > (*min_sat)[s]) return false;
      return true;
    };
    for (const Cut& c : path)
      if (!leq(c)) {
        witness = c;
        break;
      }
  }
  return witness;
}

// ---- level-parallel BFS machinery -----------------------------------------
//
// Both parallel detectors share the same level structure. Per level:
//   phase A (parallel over the level's cuts): evaluate the predicate and
//     generate the consistent successors of each cut, in slot order — the
//     exact enumeration order of the serial loop;
//   phase B (parallel over visited shards): deduplicate the flattened
//     candidate list against the shards, each shard processing its
//     candidates in global submission order, so "first occurrence wins"
//     exactly as in the serial insert;
//   serial epilogue: replay the serial loop's per-pop bookkeeping
//     (cuts_explored, max_frontier, termination checks) from the per-cut
//     results — acceptance of a candidate never depends on later
//     candidates, so prefix counts equal what the serial interleaving of
//     pops and pushes produced.

/// Phase-A output for one cut of the current level.
struct Expansion {
  bool satisfies = false;
  std::vector<Cut> succ;  // consistent successors, slot order
};

/// Flattened candidate: which level cut generated it (for prefix counts).
struct Candidate {
  std::size_t parent;
  Cut cut;
  std::size_t shard;
};

std::vector<Candidate> flatten_candidates(std::vector<Expansion>& exp,
                                          std::size_t num_shards) {
  const CutHash hasher;
  std::size_t total = 0;
  for (const Expansion& e : exp) total += e.succ.size();
  std::vector<Candidate> out;
  out.reserve(total);
  for (std::size_t i = 0; i < exp.size(); ++i)
    for (Cut& c : exp[i].succ) {
      const std::size_t shard = hasher(c) % num_shards;
      out.push_back(Candidate{i, std::move(c), shard});
    }
  return out;
}

/// Phase B over generic per-shard visited containers: `insert(shard, cut,
/// parent)` must return true iff the cut was new. Returns per-candidate
/// acceptance flags (std::uint8_t — vector<bool> is not safe to write
/// concurrently).
template <typename Insert>
std::vector<std::uint8_t> dedup_sharded(common::ThreadPool& pool,
                                        const std::vector<Candidate>& cand,
                                        std::size_t num_shards,
                                        const Insert& insert) {
  // Group candidate indices per shard, preserving global submission order
  // within each shard.
  std::vector<std::vector<std::size_t>> by_shard(num_shards);
  for (std::size_t j = 0; j < cand.size(); ++j)
    by_shard[cand[j].shard].push_back(j);

  std::vector<std::uint8_t> accepted(cand.size(), 0);
  pool.parallel_for(
      num_shards,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t shard = b; shard < e; ++shard)
          for (std::size_t j : by_shard[shard])
            accepted[j] = insert(shard, cand[j]) ? 1 : 0;
      },
      /*grain=*/1);
  return accepted;
}

LatticeResult detect_lattice_serial(const Computation& comp,
                                    std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  LatticeResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  // The initial cut (all 1s) is always consistent: state 1 has no receives
  // before it, so nothing happened before it on another process.
  Cut initial(n, 1);

  std::queue<Cut> frontier;
  std::unordered_set<Cut, CutHash> visited;
  frontier.push(initial);
  visited.insert(initial);

  while (!frontier.empty()) {
    res.max_frontier = std::max(
        res.max_frontier, static_cast<std::int64_t>(frontier.size()));
    Cut cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;

    if (satisfies(cut)) {
      res.detected = true;
      res.cut = std::move(cut);
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }

    // Successors: advance one component; the result is a consistent cut iff
    // no current component happened before the advanced state's successor
    // ... i.e. the advanced state is not happened-after-excluded. Full
    // pairwise check against the advanced component suffices because the
    // rest of the cut was already consistent.
    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      Cut next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (!consistent) continue;
      if (visited.insert(next).second) frontier.push(std::move(next));
    }
  }
  return res;
}

LatticeResult detect_lattice_parallel(const Computation& comp,
                                      std::int64_t max_cuts,
                                      std::size_t threads) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  // Force the lazy ground-truth clocks before fanning out: the first
  // happened_before call materializes them, and that must not race.
  comp.ground_truth_clock(procs[0], 1);

  common::ThreadPool pool(threads);
  const std::size_t num_shards = pool.num_threads();

  LatticeResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };
  auto expand = [&](const Cut& cut) {
    Expansion e;
    e.satisfies = satisfies(cut);
    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      Cut next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (consistent) e.succ.push_back(std::move(next));
    }
    return e;
  };

  std::vector<std::unordered_set<Cut, CutHash>> shards(num_shards);
  const CutHash hasher;
  Cut initial(n, 1);
  shards[hasher(initial) % num_shards].insert(initial);
  std::vector<Cut> level{std::move(initial)};

  while (!level.empty()) {
    auto exp = pool.parallel_map<Expansion>(
        level.size(), [&](std::size_t i) { return expand(level[i]); });
    auto cand = flatten_candidates(exp, num_shards);
    const auto accepted = dedup_sharded(
        pool, cand, num_shards, [&](std::size_t shard, const Candidate& c) {
          return shards[shard].insert(c.cut).second;
        });

    // Accepted-successor count per level cut, for the frontier-size replay.
    std::vector<std::size_t> acc_succ(level.size(), 0);
    for (std::size_t j = 0; j < cand.size(); ++j)
      if (accepted[j]) ++acc_succ[cand[j].parent];

    // Serial replay: the serial loop pops level[i] off a queue holding the
    // rest of this level plus the already-pushed successors of level[0..i).
    std::size_t pushed = 0;
    for (std::size_t i = 0; i < level.size(); ++i) {
      res.max_frontier =
          std::max(res.max_frontier,
                   static_cast<std::int64_t>(level.size() - i + pushed));
      ++res.cuts_explored;
      if (exp[i].satisfies) {
        res.detected = true;
        res.cut = std::move(level[i]);
        return res;
      }
      if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
        res.truncated = true;
        return res;
      }
      pushed += acc_succ[i];
    }

    std::vector<Cut> next_level;
    next_level.reserve(pushed);
    for (std::size_t j = 0; j < cand.size(); ++j)
      if (accepted[j]) next_level.push_back(std::move(cand[j].cut));
    level = std::move(next_level);
  }
  return res;
}

DefinitelyResult detect_definitely_serial(const Computation& comp,
                                          std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  DefinitelyResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  // Search for an observation that AVOIDS the predicate: BFS through
  // non-satisfying consistent cuts. If the top cut is reachable (or is
  // itself non-satisfying while reachable), some observation misses the
  // predicate => not definitely.
  Cut initial(n, 1);
  if (satisfies(initial)) {
    // Every observation starts at the bottom cut.
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  std::queue<Cut> frontier;
  // Maps each visited cut to its BFS predecessor (the bottom cut to itself)
  // so the avoiding observation can be reconstructed for the witness.
  std::unordered_map<Cut, Cut, CutHash> parent;
  frontier.push(initial);
  parent.emplace(initial, initial);

  while (!frontier.empty()) {
    Cut cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;
    if (cut == top) {
      res.definitely = false;  // an observation avoided the predicate
      res.witness = reconstruct_witness(
          comp, n, cut, [&](const Cut& c) -> const Cut& { return parent.at(c); });
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }

    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      Cut next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (!consistent || satisfies(next)) continue;  // blocked by the WCP
      if (parent.emplace(next, cut).second) frontier.push(std::move(next));
    }
  }
  // Every avoiding path got stuck before the top: all observations hit the
  // predicate.
  res.definitely = true;
  return res;
}

DefinitelyResult detect_definitely_parallel(const Computation& comp,
                                            std::int64_t max_cuts,
                                            std::size_t threads) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  comp.ground_truth_clock(procs[0], 1);  // materialize before fanning out

  common::ThreadPool pool(threads);
  const std::size_t num_shards = pool.num_threads();

  DefinitelyResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  Cut initial(n, 1);
  if (satisfies(initial)) {
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  // Successors blocked by the WCP (satisfying cuts) are filtered in phase A
  // and never become candidates — mirroring the serial `continue`.
  auto expand = [&](const Cut& cut) {
    Expansion e;
    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      Cut next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (!consistent || satisfies(next)) continue;
      e.succ.push_back(std::move(next));
    }
    return e;
  };

  // Visited shards double as the parent map for witness reconstruction.
  std::vector<std::unordered_map<Cut, Cut, CutHash>> shards(num_shards);
  const CutHash hasher;
  shards[hasher(initial) % num_shards].emplace(initial, initial);
  std::vector<Cut> level{std::move(initial)};
  const auto parent_of = [&](const Cut& c) -> const Cut& {
    return shards[hasher(c) % num_shards].at(c);
  };

  while (!level.empty()) {
    auto exp = pool.parallel_map<Expansion>(
        level.size(), [&](std::size_t i) { return expand(level[i]); });
    auto cand = flatten_candidates(exp, num_shards);
    const auto accepted = dedup_sharded(
        pool, cand, num_shards, [&](std::size_t shard, const Candidate& c) {
          return shards[shard].emplace(c.cut, level[c.parent]).second;
        });

    for (std::size_t i = 0; i < level.size(); ++i) {
      ++res.cuts_explored;
      if (level[i] == top) {
        res.definitely = false;
        res.witness = reconstruct_witness(comp, n, level[i], parent_of);
        return res;
      }
      if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
        res.truncated = true;
        return res;
      }
    }

    std::vector<Cut> next_level;
    next_level.reserve(cand.size());
    for (std::size_t j = 0; j < cand.size(); ++j)
      if (accepted[j]) next_level.push_back(std::move(cand[j].cut));
    level = std::move(next_level);
  }
  res.definitely = true;
  return res;
}

}  // namespace

LatticeResult detect_lattice(const Computation& comp, std::int64_t max_cuts,
                             std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  return threads <= 1 ? detect_lattice_serial(comp, max_cuts)
                      : detect_lattice_parallel(comp, max_cuts, threads);
}

DefinitelyResult detect_definitely(const Computation& comp,
                                   std::int64_t max_cuts,
                                   std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  return threads <= 1 ? detect_definitely_serial(comp, max_cuts)
                      : detect_definitely_parallel(comp, max_cuts, threads);
}

}  // namespace wcp::detect
