#include "detect/lattice.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace wcp::detect {

namespace {

struct CutHash {
  std::size_t operator()(const std::vector<StateIndex>& cut) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (StateIndex k : cut) {
      h ^= static_cast<std::size_t>(k);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace

LatticeResult detect_lattice(const Computation& comp, std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  LatticeResult res;

  auto satisfies = [&](const std::vector<StateIndex>& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  // The initial cut (all 1s) is always consistent: state 1 has no receives
  // before it, so nothing happened before it on another process.
  std::vector<StateIndex> initial(n, 1);

  std::queue<std::vector<StateIndex>> frontier;
  std::unordered_set<std::vector<StateIndex>, CutHash> visited;
  frontier.push(initial);
  visited.insert(initial);

  while (!frontier.empty()) {
    res.max_frontier = std::max(
        res.max_frontier, static_cast<std::int64_t>(frontier.size()));
    std::vector<StateIndex> cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;

    if (satisfies(cut)) {
      res.detected = true;
      res.cut = std::move(cut);
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }

    // Successors: advance one component; the result is a consistent cut iff
    // no current component happened before the advanced state's successor
    // ... i.e. the advanced state is not happened-after-excluded. Full
    // pairwise check against the advanced component suffices because the
    // rest of the cut was already consistent.
    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      std::vector<StateIndex> next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (!consistent) continue;
      if (visited.insert(next).second) frontier.push(std::move(next));
    }
  }
  return res;
}

DefinitelyResult detect_definitely(const Computation& comp,
                                   std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  DefinitelyResult res;

  auto satisfies = [&](const std::vector<StateIndex>& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  std::vector<StateIndex> top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  // Search for an observation that AVOIDS the predicate: BFS through
  // non-satisfying consistent cuts. If the top cut is reachable (or is
  // itself non-satisfying while reachable), some observation misses the
  // predicate => not definitely.
  std::vector<StateIndex> initial(n, 1);
  if (satisfies(initial)) {
    // Every observation starts at the bottom cut.
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  std::queue<std::vector<StateIndex>> frontier;
  // Maps each visited cut to its BFS predecessor (the bottom cut to itself)
  // so the avoiding observation can be reconstructed for the witness.
  std::unordered_map<std::vector<StateIndex>, std::vector<StateIndex>, CutHash>
      parent;
  frontier.push(initial);
  parent.emplace(initial, initial);

  while (!frontier.empty()) {
    std::vector<StateIndex> cut = std::move(frontier.front());
    frontier.pop();
    ++res.cuts_explored;
    if (cut == top) {
      res.definitely = false;  // an observation avoided the predicate
      // Witness: walk the avoiding path back to the bottom, then pick the
      // first cut that diverges past the minimal satisfying cut B — the
      // point where this observation provably leaves every chance of
      // satisfying the WCP behind. With no satisfying cut at all, every
      // cut avoids the predicate and the bottom cut is the witness.
      std::vector<std::vector<StateIndex>> path;
      for (std::vector<StateIndex> c = cut;;) {
        path.push_back(c);
        const auto& p = parent.at(c);
        if (p == c) break;
        c = p;
      }
      std::reverse(path.begin(), path.end());
      res.witness = path.front();  // bottom
      if (const auto min_sat = comp.first_wcp_cut()) {
        const auto leq = [&](const std::vector<StateIndex>& a) {
          for (std::size_t s = 0; s < n; ++s)
            if (a[s] > (*min_sat)[s]) return false;
          return true;
        };
        for (const auto& c : path)
          if (!leq(c)) {
            res.witness = c;
            break;
          }
      }
      return res;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      return res;
    }

    for (std::size_t s = 0; s < n; ++s) {
      if (cut[s] + 1 > comp.num_states(procs[s])) continue;
      std::vector<StateIndex> next = cut;
      next[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], next[s], procs[t], next[t]) ||
            comp.happened_before(procs[t], next[t], procs[s], next[s]))
          consistent = false;
      }
      if (!consistent || satisfies(next)) continue;  // blocked by the WCP
      if (parent.emplace(next, cut).second) frontier.push(std::move(next));
    }
  }
  // Every avoiding path got stuck before the top: all observations hit the
  // predicate.
  res.definitely = true;
  return res;
}

}  // namespace wcp::detect
