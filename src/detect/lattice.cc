#include "detect/lattice.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/cut_hash.h"
#include "common/cut_storage.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace wcp::detect {

namespace {

using Cut = std::vector<StateIndex>;

// ---- flat cut storage -------------------------------------------------------
//
// Every visited cut lives exactly once in a CutArena (packed 32-bit
// components, dense handles); the visited set / parent map are a CutTable
// plus a handle-indexed parent vector. Two consequences the code below
// leans on:
//   - serial BFS needs no frontier queue at all: cuts enter the arena in
//     exactly the order the queue would pop them, so the frontier is the
//     arena suffix [head, size) and its size is size() - head;
//   - the parallel parent map is a per-shard vector indexed by the shard
//     handle, with cross-shard references packed as (shard << 32) | handle.

/// Packed reference to a cut interned in one of the parallel shards.
using ShardRef = std::uint64_t;

ShardRef make_ref(std::size_t shard, CutHandle h) {
  return (static_cast<ShardRef>(shard) << 32) | h;
}
std::size_t shard_of(ShardRef r) { return static_cast<std::size_t>(r >> 32); }
CutHandle handle_of(ShardRef r) { return static_cast<CutHandle>(r); }

/// BFS parent offset of one interned cut: the reference of its predecessor
/// (the bottom cut references itself) plus which slot the advance took.
/// Witness paths are rebuilt from these 12-byte links on demand — the full
/// predecessor cuts are never retained (ltsmin-style trace reconstruction).
template <typename Ref>
struct ParentLink {
  Ref parent;
  std::uint32_t slot;
};

inline constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

/// Walks the parent offsets from `top` back to the bottom cut and returns
/// the advanced slot of every step, bottom first.
template <typename Ref, typename LinkOf>
std::vector<std::uint32_t> collect_path_slots(Ref top, const LinkOf& link_of) {
  std::vector<std::uint32_t> slots;
  for (Ref c = top;;) {
    const auto link = link_of(c);
    if (link.parent == c) break;
    slots.push_back(link.slot);
    c = link.parent;
  }
  std::reverse(slots.begin(), slots.end());
  return slots;
}

/// When definitely == false, the witness is the first cut on the avoiding
/// path that diverges past the pointwise-minimal satisfying cut (the bottom
/// cut when the predicate never holds). Each path step advances exactly one
/// slot of a previously dominated cut, so only that slot can break the
/// domination — the full cuts never need to be compared.
Cut witness_from_path(const Computation& comp, std::size_t n,
                      std::span<const std::uint32_t> slots) {
  if (const auto min_sat = comp.first_wcp_cut()) {
    Cut cur(n, 1);
    for (const std::uint32_t s : slots) {
      cur[s] += 1;
      if (cur[s] > (*min_sat)[s]) return cur;
    }
  }
  return Cut(n, 1);
}

// ---- level-parallel BFS machinery -----------------------------------------
//
// Both parallel detectors share the same level structure. Per level:
//   phase A (parallel over the level's cuts): evaluate the predicate and
//     generate the consistent successors of each cut, in slot order — the
//     exact enumeration order of the serial loop — writing them into the
//     cut's stride-n region of a shared candidate arena (disjoint slots,
//     no allocation, no races) and precomputing each candidate's hash;
//   phase B (parallel over visited shards): deduplicate the flattened
//     candidate list against the shards, each shard processing its
//     candidates in global submission order, so "first occurrence wins"
//     exactly as in the serial insert;
//   serial epilogue: replay the serial loop's per-pop bookkeeping
//     (cuts_explored, max_frontier, termination checks) from the per-cut
//     results — acceptance of a candidate never depends on later
//     candidates, so prefix counts equal what the serial interleaving of
//     pops and pushes produced.
//
// All per-level buffers (candidate arena, hash/flag vectors, shard index
// lists, the next-level arena) persist across levels and are reset with
// capacity kept, so the steady-state loop performs no heap allocation.

/// Flattened candidate: which level cut generated it (for prefix counts),
/// where its packed components live, which slot was advanced (for parent
/// offsets), and its precomputed shard/hash.
struct Candidate {
  std::uint32_t parent;  // index into the current level
  std::uint32_t slot;    // cut index inside the candidate arena
  std::uint32_t adv;     // advanced slot (inconsistent successors skip slots)
  std::uint32_t shard;
  std::size_t hash;
};

void flatten_candidates(std::span<const std::size_t> succ_count,
                        std::span<const std::size_t> cand_hash,
                        std::span<const std::uint32_t> cand_adv, std::size_t n,
                        std::size_t num_shards, std::vector<Candidate>& out) {
  std::size_t total = 0;
  for (const std::size_t c : succ_count) total += c;
  out.clear();
  out.reserve(total);
  for (std::size_t i = 0; i < succ_count.size(); ++i)
    for (std::size_t j = 0; j < succ_count[i]; ++j) {
      const std::size_t slot = i * n + j;
      const std::size_t hash = cand_hash[slot];
      out.push_back(Candidate{static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(slot), cand_adv[slot],
                              static_cast<std::uint32_t>(hash % num_shards),
                              hash});
    }
}

/// Phase B: `insert(shard, j)` must intern candidate j into that shard and
/// return true iff the cut was new. Each shard consumes its candidates in
/// global submission order (std::uint8_t flags — vector<bool> is not safe
/// to write concurrently).
template <typename Insert>
void dedup_sharded(common::ThreadPool& pool,
                   const std::vector<Candidate>& cand, std::size_t num_shards,
                   std::vector<std::vector<std::uint32_t>>& by_shard,
                   std::vector<std::uint8_t>& accepted, const Insert& insert) {
  for (auto& v : by_shard) v.clear();
  for (std::size_t j = 0; j < cand.size(); ++j)
    by_shard[cand[j].shard].push_back(static_cast<std::uint32_t>(j));

  accepted.assign(cand.size(), 0);
  pool.parallel_for(
      num_shards,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t shard = b; shard < e; ++shard)
          for (const std::uint32_t j : by_shard[shard])
            accepted[j] = insert(shard, j) ? 1 : 0;
      },
      /*grain=*/1);
}

LatticeResult detect_lattice_serial(const Computation& comp,
                                    std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  LatticeResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  CutArena arena(n);
  CutTable visited;
  const CutHash hasher;
  // links[h] = parent offset of the cut with handle h, enough to rebuild
  // the BFS path to any visited cut without storing predecessor cuts.
  std::vector<ParentLink<CutHandle>> links;

  // The initial cut (all 1s) is always consistent: state 1 has no receives
  // before it, so nothing happened before it on another process. From here
  // on, `scratch` is the only live std::vector — every visited cut is
  // interned into the arena, and the BFS frontier is the arena suffix of
  // not-yet-explored handles.
  Cut scratch(n, 1);
  visited.intern(arena, scratch, hasher(scratch));
  links.push_back({0, kNoSlot});

  for (std::size_t head = 0; head < arena.size(); ++head) {
    res.max_frontier = std::max(
        res.max_frontier, static_cast<std::int64_t>(arena.size() - head));
    arena.copy_to(static_cast<CutHandle>(head), scratch);
    ++res.cuts_explored;

    if (satisfies(scratch)) {
      res.detected = true;
      res.cut = scratch;
      res.witness_path = collect_path_slots(
          static_cast<CutHandle>(head),
          [&](CutHandle c) { return links[c]; });
      break;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      break;
    }

    // Successors: advance one component; the result is a consistent cut iff
    // no current component happened before the advanced state's successor
    // ... i.e. the advanced state is not happened-after-excluded. Full
    // pairwise check against the advanced component suffices because the
    // rest of the cut was already consistent. The advance is done in place
    // on `scratch` and undone after the intern — no temporary cut.
    for (std::size_t s = 0; s < n; ++s) {
      if (scratch[s] + 1 > comp.num_states(procs[s])) continue;
      scratch[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], scratch[s], procs[t], scratch[t]) ||
            comp.happened_before(procs[t], scratch[t], procs[s], scratch[s]))
          consistent = false;
      }
      if (consistent &&
          visited.intern(arena, scratch, hasher(scratch)).inserted)
        links.push_back(
            {static_cast<CutHandle>(head), static_cast<std::uint32_t>(s)});
      scratch[s] -= 1;
    }
  }
  arena.add_stats(res.storage);
  visited.add_stats(res.storage);
  return res;
}

LatticeResult detect_lattice_parallel(const Computation& comp,
                                      std::int64_t max_cuts,
                                      std::size_t threads) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  common::ThreadPool pool(threads);
  const std::size_t num_shards = pool.num_threads();

  LatticeResult res;
  const CutHash hasher;

  // Visited shards double as the parent-offset map for witness-path
  // reconstruction, exactly as in the definitely detector below.
  std::vector<CutArena> arenas(num_shards, CutArena(n));
  std::vector<CutTable> tables(num_shards);
  std::vector<std::vector<ParentLink<ShardRef>>> parents(num_shards);
  CutArena level(n), next(n), cand(n);
  std::vector<ShardRef> level_refs, next_refs;

  // Persistent per-level buffers (reset with capacity kept each level).
  std::vector<std::uint8_t> sat;
  std::vector<std::size_t> succ_count, cand_hash, acc_succ;
  std::vector<std::uint32_t> cand_adv;
  std::vector<Candidate> meta;
  std::vector<std::vector<std::uint32_t>> by_shard(num_shards);
  std::vector<std::uint8_t> accepted;
  std::vector<ShardRef> refs;

  {
    const Cut initial(n, 1);
    const std::size_t h = hasher(initial);
    const std::size_t shard = h % num_shards;
    tables[shard].intern(arenas[shard], initial, h);
    parents[shard].push_back({make_ref(shard, 0), kNoSlot});
    level.push(initial);
    level_refs.push_back(make_ref(shard, 0));
  }

  const auto fill_stats = [&] {
    for (const CutArena& a : arenas) a.add_stats(res.storage);
    for (const CutTable& t : tables) t.add_stats(res.storage);
    res.storage.peak_bytes +=
        level.peak_bytes() + next.peak_bytes() + cand.peak_bytes();
    res.storage.heap_allocs +=
        level.growths() + next.growths() + cand.growths();
  };

  while (level.size() != 0) {
    const std::size_t width = level.size();
    // Phase A: evaluate + expand into stride-n candidate regions.
    cand.resize(width * n);
    cand_hash.assign(width * n, 0);
    cand_adv.assign(width * n, 0);
    sat.assign(width, 0);
    succ_count.assign(width, 0);
    pool.parallel_for(width, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const auto cut = level.get(static_cast<CutHandle>(i));
        bool ok = true;
        for (std::size_t s = 0; s < n && ok; ++s)
          if (!comp.local_pred(procs[s], static_cast<StateIndex>(cut[s])))
            ok = false;
        sat[i] = ok ? 1 : 0;
        std::size_t count = 0;
        for (std::size_t s = 0; s < n; ++s) {
          const StateIndex ks = static_cast<StateIndex>(cut[s]) + 1;
          if (ks > comp.num_states(procs[s])) continue;
          bool consistent = true;
          for (std::size_t t = 0; t < n && consistent; ++t) {
            if (t == s) continue;
            const auto kt = static_cast<StateIndex>(cut[t]);
            if (comp.happened_before(procs[s], ks, procs[t], kt) ||
                comp.happened_before(procs[t], kt, procs[s], ks))
              consistent = false;
          }
          if (!consistent) continue;
          const auto out = cand.slot(static_cast<CutHandle>(i * n + count));
          std::copy(cut.begin(), cut.end(), out.begin());
          out[s] = static_cast<std::uint32_t>(ks);
          cand_hash[i * n + count] = hasher(out);
          cand_adv[i * n + count] = static_cast<std::uint32_t>(s);
          ++count;
        }
        succ_count[i] = count;
      }
    });

    flatten_candidates(succ_count, cand_hash, cand_adv, n, num_shards, meta);
    refs.assign(meta.size(), 0);
    dedup_sharded(pool, meta, num_shards, by_shard, accepted,
                  [&](std::size_t shard, std::size_t j) {
                    const auto r = tables[shard].intern_packed(
                        arenas[shard], cand.get(meta[j].slot), meta[j].hash);
                    if (r.inserted)
                      parents[shard].push_back(
                          {level_refs[meta[j].parent], meta[j].adv});
                    refs[j] = make_ref(shard, r.handle);
                    return r.inserted;
                  });

    // Accepted-successor count per level cut, for the frontier-size replay.
    acc_succ.assign(width, 0);
    for (std::size_t j = 0; j < meta.size(); ++j)
      if (accepted[j]) ++acc_succ[meta[j].parent];

    // Serial replay: the serial loop pops level[i] off a queue holding the
    // rest of this level plus the already-pushed successors of level[0..i).
    std::size_t pushed = 0;
    for (std::size_t i = 0; i < width; ++i) {
      res.max_frontier =
          std::max(res.max_frontier,
                   static_cast<std::int64_t>(width - i + pushed));
      ++res.cuts_explored;
      if (sat[i]) {
        res.detected = true;
        res.cut = level.materialize(static_cast<CutHandle>(i));
        res.witness_path = collect_path_slots(
            level_refs[i],
            [&](ShardRef r) { return parents[shard_of(r)][handle_of(r)]; });
        fill_stats();
        return res;
      }
      if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
        res.truncated = true;
        fill_stats();
        return res;
      }
      pushed += acc_succ[i];
    }

    next.clear();
    next_refs.clear();
    next.reserve(pushed);
    next_refs.reserve(pushed);
    for (std::size_t j = 0; j < meta.size(); ++j)
      if (accepted[j]) {
        next.push_packed(cand.get(meta[j].slot));
        next_refs.push_back(refs[j]);
      }
    std::swap(level, next);
    std::swap(level_refs, next_refs);
  }
  fill_stats();
  return res;
}

DefinitelyResult detect_definitely_serial(const Computation& comp,
                                          std::int64_t max_cuts) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  DefinitelyResult res;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  // Search for an observation that AVOIDS the predicate: BFS through
  // non-satisfying consistent cuts. If the top cut is reachable (or is
  // itself non-satisfying while reachable), some observation misses the
  // predicate => not definitely.
  Cut scratch(n, 1);
  if (satisfies(scratch)) {
    // Every observation starts at the bottom cut.
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  CutArena arena(n);
  CutTable visited;
  const CutHash hasher;
  // links[h] = BFS parent offset of the cut with handle h (the bottom cut
  // maps to itself) so the avoiding observation can be reconstructed for
  // the witness. Handles are dense insertion indices, so a plain vector
  // replaces the old cut-keyed parent map.
  std::vector<ParentLink<CutHandle>> links;
  visited.intern(arena, scratch, hasher(scratch));
  links.push_back({0, kNoSlot});

  res.definitely = true;  // until the top cut proves reachable
  for (std::size_t head = 0; head < arena.size(); ++head) {
    arena.copy_to(static_cast<CutHandle>(head), scratch);
    ++res.cuts_explored;
    if (scratch == top) {
      res.definitely = false;  // an observation avoided the predicate
      res.witness_path = collect_path_slots(
          static_cast<CutHandle>(head),
          [&](CutHandle c) { return links[c]; });
      res.witness = witness_from_path(comp, n, res.witness_path);
      break;
    }
    if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
      res.truncated = true;
      break;
    }

    for (std::size_t s = 0; s < n; ++s) {
      if (scratch[s] + 1 > comp.num_states(procs[s])) continue;
      scratch[s] += 1;
      bool consistent = true;
      for (std::size_t t = 0; t < n && consistent; ++t) {
        if (t == s) continue;
        if (comp.happened_before(procs[s], scratch[s], procs[t], scratch[t]) ||
            comp.happened_before(procs[t], scratch[t], procs[s], scratch[s]))
          consistent = false;
      }
      if (consistent && !satisfies(scratch)) {  // blocked by the WCP
        if (visited.intern(arena, scratch, hasher(scratch)).inserted)
          links.push_back(
              {static_cast<CutHandle>(head), static_cast<std::uint32_t>(s)});
      }
      scratch[s] -= 1;
    }
  }
  // Fell off the loop: every avoiding path got stuck before the top — all
  // observations hit the predicate (res.definitely stayed true).
  arena.add_stats(res.storage);
  visited.add_stats(res.storage);
  return res;
}

DefinitelyResult detect_definitely_parallel(const Computation& comp,
                                            std::int64_t max_cuts,
                                            std::size_t threads) {
  const auto procs = comp.predicate_processes();
  const std::size_t n = procs.size();

  common::ThreadPool pool(threads);
  const std::size_t num_shards = pool.num_threads();

  DefinitelyResult res;
  const CutHash hasher;

  auto satisfies = [&](const Cut& cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (!comp.local_pred(procs[s], cut[s])) return false;
    return true;
  };

  Cut top(n);
  for (std::size_t s = 0; s < n; ++s) top[s] = comp.num_states(procs[s]);

  const Cut initial(n, 1);
  if (satisfies(initial)) {
    res.definitely = true;
    res.cuts_explored = 1;
    return res;
  }

  // Visited shards double as the parent-offset map for witness
  // reconstruction: parents[shard][h] is the cross-shard reference of the
  // BFS predecessor of the cut interned at (shard, h), plus the slot the
  // advance took.
  std::vector<CutArena> arenas(num_shards, CutArena(n));
  std::vector<CutTable> tables(num_shards);
  std::vector<std::vector<ParentLink<ShardRef>>> parents(num_shards);
  CutArena level(n), next(n), cand(n);
  std::vector<ShardRef> level_refs, next_refs;

  std::vector<std::size_t> succ_count, cand_hash;
  std::vector<std::uint32_t> cand_adv;
  std::vector<Candidate> meta;
  std::vector<std::vector<std::uint32_t>> by_shard(num_shards);
  std::vector<std::uint8_t> accepted;
  std::vector<ShardRef> refs;

  {
    const std::size_t h = hasher(initial);
    const std::size_t shard = h % num_shards;
    tables[shard].intern(arenas[shard], initial, h);
    parents[shard].push_back({make_ref(shard, 0), kNoSlot});
    level.push(initial);
    level_refs.push_back(make_ref(shard, 0));
  }

  const auto fill_stats = [&] {
    for (const CutArena& a : arenas) a.add_stats(res.storage);
    for (const CutTable& t : tables) t.add_stats(res.storage);
    res.storage.peak_bytes +=
        level.peak_bytes() + next.peak_bytes() + cand.peak_bytes();
    res.storage.heap_allocs +=
        level.growths() + next.growths() + cand.growths();
  };
  const auto link_of = [&](ShardRef r) {
    return parents[shard_of(r)][handle_of(r)];
  };
  const auto is_top = [&](std::span<const std::uint32_t> cut) {
    for (std::size_t s = 0; s < n; ++s)
      if (static_cast<StateIndex>(cut[s]) != top[s]) return false;
    return true;
  };

  res.definitely = true;  // until the top cut proves reachable
  while (level.size() != 0) {
    const std::size_t width = level.size();
    // Phase A. Successors blocked by the WCP (satisfying cuts) are filtered
    // here and never become candidates — mirroring the serial `continue`.
    cand.resize(width * n);
    cand_hash.assign(width * n, 0);
    cand_adv.assign(width * n, 0);
    succ_count.assign(width, 0);
    pool.parallel_for(width, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const auto cut = level.get(static_cast<CutHandle>(i));
        std::size_t count = 0;
        for (std::size_t s = 0; s < n; ++s) {
          const StateIndex ks = static_cast<StateIndex>(cut[s]) + 1;
          if (ks > comp.num_states(procs[s])) continue;
          bool consistent = true;
          for (std::size_t t = 0; t < n && consistent; ++t) {
            if (t == s) continue;
            const auto kt = static_cast<StateIndex>(cut[t]);
            if (comp.happened_before(procs[s], ks, procs[t], kt) ||
                comp.happened_before(procs[t], kt, procs[s], ks))
              consistent = false;
          }
          if (!consistent) continue;
          bool sat = true;
          for (std::size_t t = 0; t < n && sat; ++t) {
            const StateIndex kt =
                t == s ? ks : static_cast<StateIndex>(cut[t]);
            if (!comp.local_pred(procs[t], kt)) sat = false;
          }
          if (sat) continue;
          const auto out = cand.slot(static_cast<CutHandle>(i * n + count));
          std::copy(cut.begin(), cut.end(), out.begin());
          out[s] = static_cast<std::uint32_t>(ks);
          cand_hash[i * n + count] = hasher(out);
          cand_adv[i * n + count] = static_cast<std::uint32_t>(s);
          ++count;
        }
        succ_count[i] = count;
      }
    });

    flatten_candidates(succ_count, cand_hash, cand_adv, n, num_shards, meta);
    refs.assign(meta.size(), 0);
    dedup_sharded(pool, meta, num_shards, by_shard, accepted,
                  [&](std::size_t shard, std::size_t j) {
                    const auto r = tables[shard].intern_packed(
                        arenas[shard], cand.get(meta[j].slot), meta[j].hash);
                    if (r.inserted)
                      parents[shard].push_back(
                          {level_refs[meta[j].parent], meta[j].adv});
                    refs[j] = make_ref(shard, r.handle);
                    return r.inserted;
                  });

    for (std::size_t i = 0; i < width; ++i) {
      ++res.cuts_explored;
      if (is_top(level.get(static_cast<CutHandle>(i)))) {
        res.definitely = false;
        res.witness_path = collect_path_slots(level_refs[i], link_of);
        res.witness = witness_from_path(comp, n, res.witness_path);
        fill_stats();
        return res;
      }
      if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
        res.truncated = true;
        fill_stats();
        return res;
      }
    }

    next.clear();
    next_refs.clear();
    next.reserve(meta.size());
    next_refs.reserve(meta.size());
    for (std::size_t j = 0; j < meta.size(); ++j)
      if (accepted[j]) {
        next.push_packed(cand.get(meta[j].slot));
        next_refs.push_back(refs[j]);
      }
    std::swap(level, next);
    std::swap(level_refs, next_refs);
  }
  fill_stats();
  return res;
}

}  // namespace

LatticeResult detect_lattice(const Computation& comp, std::int64_t max_cuts,
                             std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  // Materialize the trace store up front: the parallel path must not race
  // on the lazy build, and doing it here for the serial path too keeps the
  // reported trace-store stats identical across thread counts.
  (void)comp.trace_store();
  LatticeResult res = threads <= 1
                          ? detect_lattice_serial(comp, max_cuts)
                          : detect_lattice_parallel(comp, max_cuts, threads);
  res.trace_store = comp.trace_store_stats();
  return res;
}

DefinitelyResult detect_definitely(const Computation& comp,
                                   std::int64_t max_cuts,
                                   std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  (void)comp.trace_store();
  DefinitelyResult res =
      threads <= 1 ? detect_definitely_serial(comp, max_cuts)
                   : detect_definitely_parallel(comp, max_cuts, threads);
  res.trace_store = comp.trace_store_stats();
  return res;
}

std::vector<std::vector<StateIndex>> materialize_witness_path(
    std::size_t n, std::span<const std::uint32_t> path) {
  std::vector<std::vector<StateIndex>> cuts;
  cuts.reserve(path.size() + 1);
  cuts.emplace_back(n, 1);
  for (const std::uint32_t s : path) {
    WCP_REQUIRE(s < n, "witness path slot " << s << " out of range for width "
                                            << n);
    std::vector<StateIndex> nxt = cuts.back();
    nxt[s] += 1;
    cuts.push_back(std::move(nxt));
  }
  return cuts;
}

}  // namespace wcp::detect
