#include "detect/report.h"

#include <algorithm>
#include <sstream>

#include "common/json.h"

namespace wcp::detect {

namespace {

void write_header(json::Writer& w, std::string_view bench,
                  const ReportParams& params) {
  w.field("schema", kRunReportSchema);
  w.field("bench", bench);
  w.key("params");
  w.begin_object();
  w.field("N", params.N);
  w.field("n", params.n);
  w.field("m", params.m);
  w.field("seed", params.seed);
  if (!params.faults.empty()) w.field("faults", params.faults);
  w.end_object();
}

void write_bound_ratio(json::Writer& w, std::optional<double> bound,
                       std::optional<double> ratio) {
  w.key("bound");
  if (bound) w.value(*bound); else w.value(nullptr);
  w.key("ratio");
  if (ratio) w.value(*ratio); else w.value(nullptr);
}

}  // namespace

void write_run_report(json::Writer& w, std::string_view bench,
                      const ReportParams& params, const DetectionResult& r,
                      std::optional<double> bound, std::optional<double> ratio,
                      bool include_wall_clock) {
  w.begin_object();
  write_header(w, bench, params);
  w.key("metrics");
  w.begin_object();
  // Headline totals over both layers (application + monitor/coordinator),
  // the counters every complexity claim is stated in.
  w.field("detected", r.detected);
  w.field("messages",
          r.app_metrics.total_messages() + r.monitor_metrics.total_messages());
  w.field("bits", r.app_metrics.total_bits() + r.monitor_metrics.total_bits());
  w.field("work_units",
          r.app_metrics.total_work() + r.monitor_metrics.total_work());
  w.field("max_work_per_process",
          std::max(r.app_metrics.max_work_per_process(),
                   r.monitor_metrics.max_work_per_process()));
  w.field("token_hops", r.token_hops);
  w.field("peak_buffered_bytes",
          std::max(r.app_metrics.max_peak_buffered_bytes(),
                   r.monitor_metrics.max_peak_buffered_bytes()));
  w.field("detect_time", static_cast<std::int64_t>(r.detect_time));
  w.field("end_time", static_cast<std::int64_t>(r.end_time));
  // Fault-injection summary (only on faulty runs, so fault-free reports
  // stay byte-identical across schema revisions).
  if (r.faults.any()) {
    w.key("faults");
    r.faults.write_json(w);
  }
  // The full per-layer breakdown for downstream tooling.
  w.key("result");
  r.write_json(w, include_wall_clock);
  w.end_object();
  write_bound_ratio(w, bound, ratio);
  w.end_object();
}

void MetricValue::write(json::Writer& w) const {
  switch (kind_) {
    case Kind::kInt: w.value(int_); break;
    case Kind::kUint: w.value(uint_); break;
    case Kind::kDouble: w.value(double_); break;
  }
}

double MetricValue::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
  }
  return 0.0;
}

void write_run_report(
    json::Writer& w, std::string_view bench, const ReportParams& params,
    const std::vector<std::pair<std::string, MetricValue>>& metrics,
    std::optional<double> bound, std::optional<double> ratio) {
  w.begin_object();
  write_header(w, bench, params);
  w.key("metrics");
  w.begin_object();
  for (const auto& [k, v] : metrics) {
    w.key(k);
    v.write(w);
  }
  w.end_object();
  write_bound_ratio(w, bound, ratio);
  w.end_object();
}

std::string run_report_string(std::string_view bench,
                              const ReportParams& params,
                              const DetectionResult& r,
                              std::optional<double> bound,
                              std::optional<double> ratio,
                              bool include_wall_clock, int indent) {
  std::ostringstream oss;
  json::Writer w(oss, indent);
  write_run_report(w, bench, params, r, bound, ratio, include_wall_clock);
  return oss.str();
}

}  // namespace wcp::detect
