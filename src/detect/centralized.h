// Centralized WCP checker — the Garg & Waldecker (TPDS'94) baseline the
// paper compares against (§1, §3.4).
//
// Every predicate process streams its candidate vector clocks to a single
// checker process, which keeps one FIFO queue per slot and repeatedly
// eliminates dominated queue heads: head_s is eliminated when it happened
// before some other head, i.e. head_t.vc[s] >= head_s.vc[s] for some t
// (an O(1) own-component test; the paper's two vector-clock properties).
// When all n heads are present and pairwise concurrent they form the first
// WCP cut.
//
// Cost profile (E9): same O(n^2 m) total time as the token algorithm, but
// concentrated in one process, with O(n^2 m) buffer space at the checker.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "detect/result.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

class CentralizedChecker final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
    std::shared_ptr<SharedDetection> shared;
  };

  explicit CentralizedChecker(Config cfg);

  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] std::int64_t eliminations() const { return eliminations_; }

 private:
  void process();
  void pop_head(std::size_t s);
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::vector<std::deque<app::VcSnapshot>> queues_;
  std::deque<std::size_t> dirty_;  // slots whose head needs cross-comparison
  std::vector<bool> in_dirty_;
  std::int64_t eliminations_ = 0;
};

/// Runs the centralized checker online over a replay of `comp`.
DetectionResult run_centralized(const Computation& comp,
                                const RunOptions& opts);

}  // namespace wcp::detect
