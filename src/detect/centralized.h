// Centralized WCP checker — the Garg & Waldecker (TPDS'94) baseline the
// paper compares against (§1, §3.4).
//
// Every predicate process streams its candidate vector clocks to a single
// checker process, which keeps one FIFO queue per slot and repeatedly
// eliminates dominated queue heads: head_s is eliminated when it happened
// before some other head, i.e. head_t.vc[s] >= head_s.vc[s] for some t
// (an O(1) own-component test; the paper's two vector-clock properties).
// When all n heads are present and pairwise concurrent they form the first
// WCP cut.
//
// The elimination state machine lives in detect::CentralizedCore
// (detect/stream_core.h) so the streaming service can run it over wire-fed
// streams; this node hosts the core on the simulator and forwards the
// buffer/work accounting into the network metrics.
//
// Cost profile (E9): same O(n^2 m) total time as the token algorithm, but
// concentrated in one process, with O(n^2 m) buffer space at the checker.
#pragma once

#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "app/snapshot_stream.h"
#include "detect/result.h"
#include "detect/stream_core.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

class CentralizedChecker final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
    std::shared_ptr<SharedDetection> shared;
  };

  explicit CentralizedChecker(Config cfg);

  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] std::int64_t eliminations() const {
    return core_->eliminations();
  }

 private:
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::vector<std::vector<app::VcSnapshot>> states_;  // per slot, in order
  app::SnapshotStateStream stream_;
  std::unique_ptr<CentralizedCore> core_;
};

/// Runs the centralized checker online over a replay of `comp`.
DetectionResult run_centralized(const Computation& comp,
                                const RunOptions& opts);

}  // namespace wcp::detect
