// Slice-pruned detection — the computation-slicing front end over the
// Cooper-Marzullo baselines in detect/lattice.h.
//
// possibly(WCP): answered from slice non-emptiness. The slice bottom IS the
// pointwise-minimal satisfying cut, so the result is bit-compatible with
// detect_lattice (same LatticeResult, same cut) at O(n^2 m) cost instead of
// O(m^n) lattice exploration. cuts_explored counts candidate states the
// fixpoint eliminated (+1 for the final cut).
//
// definitely(WCP): re-implemented over the slice complement. An observation
// avoids the predicate iff it can chain through *false intervals* — maximal
// runs of predicate-false states — handing the "some slot is false" duty
// from one interval to a concurrent one (the boundary cuts where the
// observation skirts the slice). The search explores only intervals and
// candidate handoff cuts, O(n^2 m^2) worst case, instead of every
// non-satisfying consistent cut. Verdicts match detect_definitely on every
// computation (tests/sliced_detect_test.cc cross-checks exhaustively).
//
// Both keep the old enumerations in detect/lattice.{h,cc} as the reference
// implementations and share LatticeResult/DefinitelyResult with them.
#pragma once

#include <cstdint>

#include "detect/lattice.h"
#include "detect/report.h"
#include "detect/result.h"
#include "slice/online_slicer.h"
#include "slice/slice.h"
#include "trace/computation.h"

namespace wcp::detect {

/// possibly(WCP) from the slice bottom; agrees with detect_lattice.
/// `threads` exists for interface uniformity with detect_lattice (the CLI
/// and sweep runner pass --threads through every detector): the JIL
/// fixpoint is inherently serial — a chain of dependent candidate
/// eliminations — so the parameter only resolves 0 via default_threads()
/// and the result is identical for every value, which the differential
/// sweep in tests/flat_storage_equiv_test.cc asserts.
LatticeResult detect_lattice_sliced(const Computation& comp,
                                    std::size_t threads = 1);

/// definitely(WCP) via the false-interval handoff search. `max_cuts` caps
/// the number of candidate handoff cuts examined (<0: unbounded); on cap
/// the result is inconclusive and truncated is set, mirroring the baseline.
/// `threads` as in detect_lattice_sliced: accepted, thread-invariant.
DefinitelyResult detect_definitely_sliced(const Computation& comp,
                                          std::int64_t max_cuts = -1,
                                          std::size_t threads = 1);

/// Outcome of one online slicing run (see slice/online_slicer.h).
struct SliceOnlineResult {
  bool detected = false;
  std::vector<StateIndex> cut;
  SimTime detect_time = 0;
  std::int64_t states_received = 0;
  std::int64_t jil_advances = 0;   ///< candidate states eliminated online
  std::int64_t clock_lookups = 0;  ///< pairwise consistency probes
  /// Slice of the received stream, built after the run.
  std::int64_t slice_groups = 0;
  std::int64_t slice_edges = 0;
  std::int64_t slice_cuts = 0;  ///< satisfying cuts (capped)
  bool slice_cuts_saturated = false;
  Metrics app_metrics;
  Metrics monitor_metrics;
};

/// Runs the online slicer over a replay of `comp` (mirrors
/// run_lattice_online). `count_cap` bounds the post-run satisfying-cut
/// count.
SliceOnlineResult run_slice_online(const Computation& comp,
                                   const RunOptions& opts,
                                   std::int64_t count_cap = 1'000'000);

/// The slice-specific counters of a run as flat report metrics, ready for
/// write_run_report / bench report_run (schema wcp-run-report/1). Counters
/// are integer-typed so the JSON never renders them in exponent notation.
std::vector<std::pair<std::string, MetricValue>> slice_report_metrics(
    const SliceOnlineResult& r);

}  // namespace wcp::detect
