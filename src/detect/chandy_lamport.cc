#include "detect/chandy_lamport.h"

#include <numeric>
#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

std::int64_t ClSnapshot::total_in_channels() const {
  std::int64_t sum = 0;
  for (const auto& row : channel)
    sum += std::accumulate(row.begin(), row.end(), std::int64_t{0});
  return sum;
}

bool ClSnapshot::all_passive_and_empty() const {
  for (bool p : pred)
    if (!p) return false;
  return total_in_channels() == 0;
}

namespace {

class ClCollector final : public sim::Node {
 public:
  struct Config {
    std::size_t num_processes = 1;
    ClOptions options;
    std::shared_ptr<SharedDetection> shared;
    std::vector<ClSnapshot>* snapshots = nullptr;
  };

  explicit ClCollector(Config cfg) : cfg_(std::move(cfg)) {
    WCP_CHECK(cfg_.snapshots != nullptr && cfg_.shared != nullptr);
    reports_.resize(cfg_.num_processes);
  }

  void on_start() override {
    after(cfg_.options.first_round_at, [this] { initiate(); });
  }

  void on_packet(sim::Packet&& p) override {
    WCP_CHECK_MSG(p.kind == MsgKind::kControl,
                  "CL coordinator got " << to_string(p.kind));
    auto report = std::any_cast<app::ClReport>(std::move(p.payload));
    WCP_CHECK_MSG(report.round == round_, "report from a stale round");
    const auto idx = report.pid.idx();
    WCP_CHECK(!reports_[idx].has_value());
    reports_[idx] = std::move(report);
    if (++received_ == cfg_.num_processes) finish_round();
  }

 private:
  void initiate() {
    ++round_;
    received_ = 0;
    for (auto& r : reports_) r.reset();
    send(sim::NodeAddr::app(ProcessId(0)), MsgKind::kControl,
         app::ClInitiate{round_}, /*bits=*/64);
  }

  void finish_round() {
    const std::size_t N = cfg_.num_processes;
    ClSnapshot snap;
    snap.round = round_;
    snap.completed_at = net().simulator().now();
    snap.cut.resize(N);
    snap.pred.resize(N);
    snap.channel.assign(N, std::vector<std::int64_t>(N, 0));
    for (std::size_t p = 0; p < N; ++p) {
      const app::ClReport& r = *reports_[p];
      snap.cut[p] = r.state;
      snap.pred[p] = r.pred;
      for (std::size_t q = 0; q < N; ++q)
        snap.channel[q][p] = r.channel_counts[q];
    }

    const bool hit = cfg_.options.stable_predicate
                         ? cfg_.options.stable_predicate(snap)
                         : snap.all_passive_and_empty();
    cfg_.snapshots->push_back(std::move(snap));

    if (hit) {
      auto& shared = *cfg_.shared;
      shared.detected = true;
      shared.cut = cfg_.snapshots->back().cut;
      shared.detect_time = net().simulator().now();
      net().simulator().stop();
      return;
    }
    if (round_ < cfg_.options.max_rounds)
      after(cfg_.options.inter_round_delay, [this] { initiate(); });
  }

  Config cfg_;
  int round_ = 0;
  std::size_t received_ = 0;
  std::vector<std::optional<app::ClReport>> reports_;
};

}  // namespace

ClResult run_chandy_lamport(const Computation& comp, const RunOptions& opts,
                            const ClOptions& cl) {
  const std::size_t N = comp.num_processes();

  sim::NetworkConfig ncfg = network_config(opts, N);
  // The classic Chandy-Lamport FIFO-channel assumption.
  ncfg.fifo_all = true;
  sim::Network net(std::move(ncfg));

  auto shared = std::make_shared<SharedDetection>();
  auto snapshots = std::make_unique<std::vector<ClSnapshot>>();

  ClCollector::Config cc;
  cc.num_processes = N;
  cc.options = cl;
  cc.shared = shared;
  cc.snapshots = snapshots.get();
  net.add_node(sim::NodeAddr::coordinator(),
               std::make_unique<ClCollector>(std::move(cc)));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.emit_snapshots = false;  // no monitor processes in a CL run
  app::install_app_drivers(net, comp, drv);

  net.start_and_run(opts.max_events);

  ClResult r;
  r.detected = shared->detected;
  r.snapshots = std::move(*snapshots);
  r.detect_time = shared->detect_time;
  r.end_time = net.simulator().now();
  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  return r;
}

}  // namespace wcp::detect
