#include "detect/lower_bound.h"

#include <algorithm>
#include <queue>

namespace wcp::detect {

AdversaryGame::AdversaryGame(int num_queues, std::int64_t chain_length)
    : n_(num_queues), m_(chain_length), heads_(num_queues, 0) {
  WCP_REQUIRE(num_queues >= 2, "the game needs at least two queues");
  WCP_REQUIRE(chain_length >= 1, "chains must be non-empty");
}

bool AdversaryGame::some_queue_empty() const {
  return std::any_of(heads_.begin(), heads_.end(),
                     [&](std::int64_t h) { return h >= m_; });
}

void AdversaryGame::refresh_answer() {
  if (answer_valid_) return;
  if (some_queue_empty()) {
    answer_ = {-1, -1};
    answer_valid_ = true;
    return;
  }
  // The strategy: the "larger" endpoint is the current head of the queue
  // deleted from last (initially queue 0); the "smaller" endpoint is the
  // head of the longest remaining other queue.
  const int i = last_deleted_ < 0 ? 0 : last_deleted_;
  int j = -1;
  std::int64_t longest = -1;
  for (int q = 0; q < n_; ++q) {
    if (q == i) continue;
    const std::int64_t len = m_ - heads_[static_cast<std::size_t>(q)];
    if (len > longest) {
      longest = len;
      j = q;
    }
  }
  WCP_CHECK(j >= 0);
  answer_ = {j, i};
  answer_valid_ = true;

  history_.push_back(Declared{j, i, heads_[static_cast<std::size_t>(j)],
                              heads_[static_cast<std::size_t>(i)]});
  // Record the concurrency claims implied by this answer: every pair of
  // current heads other than (j, i) is declared concurrent.
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      if ((a == answer_.first && b == answer_.second) ||
          (b == answer_.first && a == answer_.second))
        continue;
      concurrent_claims_.emplace_back(
          node_id(a, heads_[static_cast<std::size_t>(a)]),
          node_id(b, heads_[static_cast<std::size_t>(b)]));
    }
  }
}

std::pair<int, int> AdversaryGame::compare_heads() {
  ++steps_;
  refresh_answer();
  return answer_;
}

void AdversaryGame::delete_heads(const std::vector<int>& queues) {
  ++steps_;
  refresh_answer();
  for (int q : queues) {
    WCP_REQUIRE(q >= 0 && q < n_, "bad queue " << q);
    WCP_REQUIRE(heads_[static_cast<std::size_t>(q)] < m_,
                "queue " << q << " already empty");
    // Only the declared-smaller head is justified for deletion.
    WCP_REQUIRE(q == answer_.first,
                "unjustified deletion of head of queue "
                    << q << " (adversary can realize it in an anti-chain)");
  }
  if (queues.empty()) return;
  const int q = queues.front();
  ++heads_[static_cast<std::size_t>(q)];
  ++deletions_;
  last_deleted_ = q;
  answer_valid_ = false;
}

bool AdversaryGame::verify_realizable() const {
  // Build adjacency of the realized poset: chain edges (q,k) -> (q,k+1)
  // plus all declared edges, then check (a) acyclicity is implied by a
  // topological argument — declared edges always point from a
  // deeper-or-equal chain position to a head that still exists; we check it
  // directly anyway — and (b) every concurrency claim is a genuinely
  // incomparable pair.
  const std::int64_t total = static_cast<std::int64_t>(n_) * m_;
  std::vector<std::vector<std::int64_t>> adj(
      static_cast<std::size_t>(total));
  for (int q = 0; q < n_; ++q)
    for (std::int64_t k = 0; k + 1 < m_; ++k)
      adj[static_cast<std::size_t>(node_id(q, k))].push_back(
          node_id(q, k + 1));
  for (const Declared& d : history_)
    adj[static_cast<std::size_t>(node_id(d.from_q, d.from_idx))].push_back(
        node_id(d.to_q, d.to_idx));

  // Reachability from every node (small test-sized games only).
  std::vector<std::vector<bool>> reach(
      static_cast<std::size_t>(total),
      std::vector<bool>(static_cast<std::size_t>(total), false));
  for (std::int64_t v = 0; v < total; ++v) {
    std::queue<std::int64_t> bfs;
    bfs.push(v);
    while (!bfs.empty()) {
      const std::int64_t u = bfs.front();
      bfs.pop();
      for (std::int64_t w : adj[static_cast<std::size_t>(u)]) {
        if (!reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)]) {
          reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)] =
              true;
          bfs.push(w);
        }
      }
    }
    if (reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)])
      return false;  // cycle: not a partial order
  }

  for (const auto& [a, b] : concurrent_claims_) {
    if (reach[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] ||
        reach[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)])
      return false;  // claimed concurrent but actually ordered
  }
  return true;
}

GameOutcome play_greedy(int num_queues, std::int64_t chain_length,
                        bool verify) {
  AdversaryGame game(num_queues, chain_length);
  while (!game.some_queue_empty()) {
    const auto [smaller, larger] = game.compare_heads();
    (void)larger;
    if (smaller < 0) break;
    game.delete_heads({smaller});
  }
  if (verify) WCP_CHECK(game.verify_realizable());
  GameOutcome out;
  out.steps = game.steps();
  out.deletions = game.deletions();
  out.bound = static_cast<std::int64_t>(num_queues) * chain_length -
              num_queues;
  return out;
}

}  // namespace wcp::detect
