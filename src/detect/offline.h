// Offline executions of the paper's algorithms.
//
// These run the exact token-passing logic of §3 and §4 directly against the
// computation's snapshot streams, with message passing replaced by function
// calls — no simulator, no latency. They detect the same first cut as the
// online versions (asserted by the differential tests) and are fast enough
// for large-scale sweeps (hundreds of processes, thousands of states).
//
// Costs are still accounted: work units per monitor, token hops, message
// counts (what the online run *would* send), so the offline detectors also
// back the complexity experiments at scales where simulating every packet
// is unnecessary.
#pragma once

#include "detect/result.h"
#include "trace/computation.h"

namespace wcp::detect {

/// §3 single-token vector-clock algorithm, offline.
DetectionResult detect_token_vc_offline(const Computation& comp);

/// §4 direct-dependence algorithm, offline (serial schedule).
DetectionResult detect_direct_dep_offline(const Computation& comp);

}  // namespace wcp::detect
