// The §5 lower-bound adversary, as an executable game.
//
// Model: a poset of n chains ("queues") of m abstract states each, accessed
// online — only queue heads are visible, deleted heads are lost. A detection
// algorithm may, per step:
//   S1  compare all current heads (the adversary answers with the
//       comparabilities among them), or
//   S2  delete the heads of any set of queues.
// A deletion is only *justified* for a head the adversary has declared
// smaller than some other current head — otherwise the adversary could
// realize a poset in which the deleted head belongs to the size-n
// anti-chain and the algorithm would be wrong.
//
// The adversary implements the strategy from the proof of Theorem 5.1: it
// declares all heads concurrent except that the head of the longest queue
// is smaller than the current head of the last-deleted queue, so at most
// one deletion per step can be justified. The game ends when some queue is
// empty; by then at least nm - n states have been deleted one at a time.
//
// The game additionally records every answer and can verify *realizability*
// (invariant I7 of DESIGN.md): the declared relations, closed under the
// chain orders, form a partial order in which every pair declared
// concurrent really is incomparable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"

namespace wcp::detect {

class AdversaryGame {
 public:
  AdversaryGame(int num_queues, std::int64_t chain_length);

  /// S1: compare all current heads. Returns the (single, per the strategy)
  /// ordered pair (j, i) meaning "head of queue j < head of queue i", or
  /// (-1, -1) once a queue is empty. Deterministic: repeating the query
  /// without an intervening deletion returns the same answer.
  [[nodiscard]] std::pair<int, int> compare_heads();

  /// S2: delete the heads of the given queues. Every deleted head must be
  /// justified (declared smaller than some current head); throws otherwise.
  void delete_heads(const std::vector<int>& queues);

  [[nodiscard]] bool some_queue_empty() const;
  [[nodiscard]] std::int64_t head_of(int queue) const {
    return heads_.at(static_cast<std::size_t>(queue));
  }
  [[nodiscard]] std::int64_t remaining(int queue) const {
    return m_ - heads_.at(static_cast<std::size_t>(queue));
  }

  [[nodiscard]] std::int64_t steps() const { return steps_; }
  [[nodiscard]] std::int64_t deletions() const { return deletions_; }

  /// Verifies that the adversary's full answer history is realizable by an
  /// actual poset (builds the DAG of declared edges + chain edges and
  /// checks every concurrent-declared pair is incomparable). O((nm)^2 · E);
  /// intended for test-sized games.
  [[nodiscard]] bool verify_realizable() const;

 private:
  struct Declared {
    // (queue, index) < (queue', index'), indices are 0-based positions in
    // the original chains.
    int from_q, to_q;
    std::int64_t from_idx, to_idx;
  };

  void refresh_answer();
  [[nodiscard]] std::int64_t node_id(int q, std::int64_t idx) const {
    return static_cast<std::int64_t>(q) * m_ + idx;
  }

  int n_;
  std::int64_t m_;
  std::vector<std::int64_t> heads_;  // index of current head per queue
  int last_deleted_ = -1;            // queue whose head was deleted last
  std::pair<int, int> answer_{-1, -1};
  bool answer_valid_ = false;
  std::vector<Declared> history_;    // all declared edges
  // Pairs of *states* declared concurrent (recorded per distinct answer).
  std::vector<std::pair<std::int64_t, std::int64_t>> concurrent_claims_;
  std::int64_t steps_ = 0;
  std::int64_t deletions_ = 0;
};

/// Outcome of letting a player play the game to the end.
struct GameOutcome {
  std::int64_t steps = 0;
  std::int64_t deletions = 0;
  /// nm - n: the bound from Theorem 5.1 (the adversary forces at least
  /// this many sequential deletions).
  std::int64_t bound = 0;
};

/// A natural comparison-based player: compare, delete every justified head
/// (the strategy makes that exactly one), repeat until a queue empties.
GameOutcome play_greedy(int num_queues, std::int64_t chain_length,
                        bool verify = false);

}  // namespace wcp::detect
