// Direct-dependence based WCP detection — §4 of the paper (Figs. 4 & 5) —
// plus the §4.5 parallel variant.
//
// No vector clocks: every application process numbers its states with a
// scalar counter and records one (source, clock) dependence per receive.
// All N monitor processes participate. The candidate cut is fully
// distributed: each monitor holds its own color and G. Monitors whose
// candidate is eliminated form a linked "red chain" threaded through their
// next_red pointers; the (empty) token always sits at the head of the
// chain. The token holder advances its candidate, polls the source of every
// collected dependence (inserting monitors that turn red into the chain
// right behind itself), and passes the token down the chain. An empty chain
// means every monitor is green: the G values form the first consistent cut
// satisfying the WCP (Theorems 4.3/4.4).
//
// Paper-fidelity notes:
//  * Fig. 4 omits "G := candidate.clock" after acceptance; the correctness
//    lemmas require it, so we commit it (DESIGN.md §2.1).
//  * In the parallel variant a monitor keeps its color red until the token
//    actually leaves it. This is what keeps the chain unbroken ("the token
//    must visit a process before that process can be removed from the red
//    chain", §4.5): a poll can then never overwrite the next_red pointer of
//    a chain member, because Fig. 5 only overwrites next_red on a
//    green->red transition. In the serial algorithm the two orders are
//    indistinguishable (only the holder polls).
//
// Complexity (measured by E4): O(Nm) total work, messages and bits; O(m)
// work and space per process.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "clock/dependence.h"
#include "detect/result.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

/// The token of §4.2 carries no data.
struct DdToken {};

/// Poll message (Fig. 4): the dependence's clock value plus the poller's
/// current next_red pointer (-1 encodes NULL).
struct DdPoll {
  LamportTime clock = 0;
  int next_red = -1;
};

/// Poll response (Fig. 5).
struct DdPollReply {
  bool became_red = false;
};

/// Fired each time the token is handed off (new_holder == -1 on detection);
/// the test suite uses it to verify the red-chain invariant (Lemma 4.2.3).
using DdHandoffObserver = std::function<void(ProcessId from, int new_holder)>;

class DdMonitor final : public sim::Node {
 public:
  struct Config {
    std::size_t num_processes = 1;  // N
    bool parallel = false;          // §4.5 proactive mode
    bool starts_with_token = false;
    int initial_next_red = -1;      // initial chain: i -> i+1 -> ... -> NULL
    bool halt_apps = false;         // distributed breakpoint on detection
    std::shared_ptr<SharedDetection> shared;
    DdHandoffObserver on_handoff;   // may be empty
  };

  explicit DdMonitor(Config cfg);

  void on_start() override;
  void on_packet(sim::Packet&& p) override;

  // Introspection for the run harness and the invariant tests.
  [[nodiscard]] Color color() const { return color_; }
  [[nodiscard]] LamportTime G() const { return G_; }
  [[nodiscard]] int next_red() const { return next_red_; }
  [[nodiscard]] bool holding_token() const { return has_token_; }

 private:
  void drive();
  void send_next_poll();
  void commit_and_handoff();
  void handle_poll(ProcessId from, const DdPoll& poll);

  Config cfg_;

  // Distributed token state (Table 1 of the paper: token.color[i] and
  // token.G[i] live here as M_i.color and M_i.G).
  Color color_ = Color::kRed;
  LamportTime G_ = 0;
  int next_red_ = -1;

  std::deque<app::DdSnapshot> inbox_;
  bool has_token_ = false;
  bool waiting_candidate_ = false;
  bool poll_outstanding_ = false;
  LamportTime tentative_ = 0;  // accepted-but-uncommitted candidate (0: none)
  std::vector<Dependence> poll_queue_;
  std::size_t poll_cursor_ = 0;
  bool eos_ = false;
};

struct DdRunOptions {
  bool parallel = false;
};

/// Run-level observation hook: fired at every token handoff with access to
/// every monitor's live state (valid only during the callback). Used by the
/// invariant tests to verify the red chain (Lemma 4.2.3).
using DdInspector = std::function<void(const std::vector<DdMonitor*>& monitors,
                                       ProcessId from, int new_holder)>;

/// A set of installed direct-dependence monitors (one per process, the
/// initial red chain threaded 0 -> 1 -> ... -> N-1, token at monitor 0).
/// Monitor pointers stay valid while the network lives; after detection
/// their G() values form the cut.
struct DdInstallation {
  std::shared_ptr<SharedDetection> shared;
  std::vector<DdMonitor*> monitors;
};

/// Installs direct-dependence monitors into an existing network — the live
/// (non-replay) entry point; pair with app::Instrument in direct-dependence
/// mode on every application process.
DdInstallation install_dd_monitors(sim::Network& net, std::size_t N,
                                   const DdRunOptions& dd = {},
                                   bool halt_apps = false,
                                   const DdHandoffObserver& observer = {});

/// Runs the direct-dependence algorithm online over a replay of `comp`.
/// All N processes participate; processes outside the predicate set run
/// with the identically-true local predicate (§4's requirement).
DetectionResult run_direct_dep(const Computation& comp, const RunOptions& opts,
                               const DdRunOptions& dd = {},
                               const DdInspector& inspector = {});

}  // namespace wcp::detect
