// Boolean combinations of local predicates — the §2 reduction:
// "any boolean predicate can be detected using an algorithm that detects
// conjunctive predicates [7]".
//
// A boolean global predicate over local predicates l_1..l_n is put in
// disjunctive normal form; each disjunct is a conjunction of literals
// (l_i or ¬l_i over a subset of the slots) and is detected independently
// with the WCP machinery (a literal just flips which local states are
// admissible candidates). possibly(B) holds iff some disjunct has a
// consistent satisfying cut.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "trace/computation.h"

namespace wcp::detect {

/// One literal of a conjunct: predicate slot `slot` of the computation,
/// possibly negated.
struct Literal {
  int slot = 0;
  bool negated = false;
};

/// A conjunction of literals (at least one). Slots may not repeat.
using Conjunct = std::vector<Literal>;

struct DnfResult {
  bool detected = false;
  /// Index of the first satisfiable disjunct (in argument order), or -1.
  int disjunct = -1;
  /// Its minimal satisfying cut, over the processes of that disjunct's
  /// slots in `procs` order.
  std::vector<ProcessId> procs;
  std::vector<StateIndex> cut;
  /// Per-disjunct satisfiability (same size as the input).
  std::vector<bool> satisfiable;
};

/// possibly(D_0 ∨ D_1 ∨ ...): runs first-cut detection for every disjunct.
DnfResult detect_dnf(const Computation& comp,
                     std::span<const Conjunct> disjuncts);

}  // namespace wcp::detect
