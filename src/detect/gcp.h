// Generalized Conjunctive Predicates (GCP) — the companion extension of
// Garg, Chase, Mitchell & Kilgore (HICSS'95, reference [6] of the paper):
// conjunctions of local predicates AND channel predicates.
//
// A channel predicate constrains the messages in transit on one directed
// channel at the cut: sent by `from` before its cut state, not yet received
// by `to` at its cut state. The supported predicates are *linear* in the
// Chase-Garg sense, which is what makes first-cut detection well defined:
//
//   kEmpty    in_transit == 0   violating cut => advance the RECEIVER
//   kAtMost   in_transit <= k   (receiver-monotone, same rule)
//   kAtLeast  in_transit >= k   violating cut => advance the SENDER
//
// Both families are closed under pointwise meet on consistent cuts, so the
// conjunction has a unique minimal satisfying cut; detect_gcp finds it with
// the advance-candidate strategy (local-predicate + consistency + channel
// eliminations), and detect_gcp_lattice provides the brute-force oracle the
// tests compare against.
//
// The flagship instance is distributed termination detection:
//   (forall i: passive_i)  ∧  (forall channels: empty)
// — see examples/termination_detection.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/cut_storage.h"
#include "common/types.h"
#include "trace/computation.h"

namespace wcp::detect {

struct ChannelPredicate {
  enum class Kind : std::uint8_t { kEmpty, kAtMost, kAtLeast };

  ProcessId from;
  ProcessId to;
  Kind kind = Kind::kEmpty;
  std::int64_t k = 0;

  [[nodiscard]] bool holds(std::int64_t in_transit) const {
    switch (kind) {
      case Kind::kEmpty: return in_transit == 0;
      case Kind::kAtMost: return in_transit <= k;
      case Kind::kAtLeast: return in_transit >= k;
    }
    return false;
  }

  static ChannelPredicate empty(ProcessId from, ProcessId to) {
    return {from, to, Kind::kEmpty, 0};
  }
  static ChannelPredicate at_most(ProcessId from, ProcessId to,
                                  std::int64_t k) {
    return {from, to, Kind::kAtMost, k};
  }
  static ChannelPredicate at_least(ProcessId from, ProcessId to,
                                   std::int64_t k) {
    return {from, to, Kind::kAtLeast, k};
  }

  /// Channel predicates asserting every directed channel of an N-process
  /// system is empty (the termination-detection instance).
  static std::vector<ChannelPredicate> all_channels_empty(std::size_t N);
};

std::ostream& operator<<(std::ostream& os, const ChannelPredicate& cp);

struct GcpResult {
  bool detected = false;
  /// Cut over the GCP's process set: the predicate processes of the
  /// computation plus every channel endpoint, in `procs` order.
  std::vector<ProcessId> procs;
  std::vector<StateIndex> cut;
  std::int64_t eliminations = 0;       // states discarded
  std::int64_t channel_evals = 0;      // channel-predicate evaluations
  std::int64_t cuts_explored = 0;      // lattice oracle only
  CutStorageStats storage;             // lattice oracle only
};

/// Advance-candidate GCP detection (offline; operates on the computation's
/// ground-truth causality).
GcpResult detect_gcp(const Computation& comp,
                     std::span<const ChannelPredicate> channels);

/// Brute-force lattice oracle: BFS over consistent cuts of the same process
/// set, returning the first (minimal-level) satisfying cut.
GcpResult detect_gcp_lattice(const Computation& comp,
                             std::span<const ChannelPredicate> channels,
                             std::int64_t max_cuts = -1);

/// Messages in transit from `cp.from` to `cp.to` at the cut position
/// (from_state, to_state): sent strictly before the end of from_state's
/// successor boundary, not yet received at to_state. Exposed for tests.
std::int64_t in_transit(const Computation& comp, ProcessId from,
                        StateIndex from_state, ProcessId to,
                        StateIndex to_state);

}  // namespace wcp::detect
