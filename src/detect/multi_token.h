// Multi-token (g groups) WCP detection — §3.5 of the paper.
//
// The predicate slots are partitioned into g groups, each running the
// single-token algorithm restricted to its own members. When a group has no
// red member left, its token is returned to a pre-determined leader. The
// leader merges the g tokens into a canonical candidate cut, performs the
// cross-group consistency check (using the accepted candidates' vector
// clocks carried in VcToken::V — see DESIGN.md §2.3), and either declares
// detection or re-dispatches tokens into every group that still contains a
// red slot.
//
// With g == 1 this degenerates to the single-token algorithm plus one
// leader round-trip; with g == n every slot advances independently.
#pragma once

#include <memory>
#include <vector>

#include "detect/result.h"
#include "detect/token_vc.h"
#include "trace/computation.h"

namespace wcp::detect {

struct MultiTokenOptions {
  /// Number of groups g (clamped to [1, n]). Slots are partitioned
  /// round-robin: slot s belongs to group s % g.
  int num_groups = 2;
};

class MultiTokenLeader final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
    std::vector<int> group_of_slot;
    int num_groups = 1;
    bool halt_apps = false;  // distributed breakpoint on detection
    std::shared_ptr<SharedDetection> shared;

    // Crash recovery: the leader is the guardian of every group token. A
    // dispatched token whose lease expires without a heartbeat or a return
    // is regenerated from the canonical merged state (the last "acked"
    // state) under a bumped per-group incarnation; stale returns are still
    // merged (sound) but only an incarnation match clears `outstanding`.
    TokenRecoveryOptions recovery;
  };

  explicit MultiTokenLeader(Config cfg);

  void on_start() override;
  void on_packet(sim::Packet&& p) override;

  /// Number of merge rounds performed (for the E6 bench).
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

 private:
  void merge(const VcToken& tok);
  void cross_check_and_dispatch();
  void dispatch(int group, bool regenerated);
  void group_done(int group);
  void arm_watchdog();
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  VcToken canonical_;
  int outstanding_ = 0;
  std::int64_t rounds_ = 0;

  // Per-group recovery state (indexed by group id).
  std::vector<std::int64_t> incarnation_;
  std::vector<char> outstanding_group_;
  std::vector<char> starved_;  // group's holder starved; stop regenerating
  std::vector<SimTime> deadline_;
  bool wd_armed_ = false;
};

DetectionResult run_multi_token(const Computation& comp,
                                const RunOptions& opts,
                                const MultiTokenOptions& mt);

}  // namespace wcp::detect
