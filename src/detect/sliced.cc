#include "detect/sliced.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "app/app_driver.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "slice/jil.h"

namespace wcp::detect {

LatticeResult detect_lattice_sliced(const Computation& comp,
                                    std::size_t threads) {
  // Inherently serial (see header); resolving 0 keeps WCP_THREADS
  // validation uniform across detectors, then the value is unused.
  if (threads == 0) (void)common::ThreadPool::default_threads();
  const slice::ComputationInput in(comp);
  slice::JilCounters ctr;
  std::vector<StateIndex> lo(in.num_slots(), 1);
  const auto bottom = slice::least_satisfying_cut(in, lo, &ctr);

  LatticeResult res;
  res.detected = bottom.has_value();
  if (bottom) res.cut = *bottom;
  // One candidate examined per eliminated state, plus the final cut; the
  // slice-side analogue of the baseline's cuts_explored.
  res.cuts_explored = ctr.advances + 1;
  res.max_frontier = 1;  // the fixpoint tracks a single candidate
  res.trace_store = comp.trace_store_stats();
  return res;
}

namespace {

constexpr StateIndex kNoEntry = std::numeric_limits<StateIndex>::max();

/// A maximal run of predicate-false states on one slot. `entry` is the
/// lowest state at which an avoiding observation can anchor here (kNoEntry
/// until the search reaches the interval).
struct FalseInterval {
  std::size_t slot;
  StateIndex lo = 0;
  StateIndex hi = 0;
  StateIndex entry = kNoEntry;
  int pred_iv = -1;       // predecessor interval in the handoff chain
  StateIndex pred_k = 0;  // anchor state of the predecessor at handoff
};

}  // namespace

// definitely(WCP) is false iff some observation (maximal chain of
// consistent cuts) avoids every satisfying cut. For a conjunctive
// predicate, a cut avoids the WCP iff some slot sits on a false state, so
// an avoiding observation is exactly a chain of *anchors*: it enters a
// false interval, holds that slot false while every other process runs
// freely, and before the anchor's false run ends it hands off to a
// concurrent false state on another slot (a boundary cut skirting the
// slice). Hence the search below: label each false interval with the
// lowest state an anchor chain can enter it at, propagate handoffs, and
// report "not definitely" iff a labeled interval reaches the end of its
// process (the observation then tops out with that slot still false).
//
// Handoff feasibility from (s, k) to (t, l) is plain concurrency — the
// two anchor states must be frontier states of one consistent cut — and
// picking the smallest admissible k maximizes the options, since the
// causal floors are monotone in k. Soundness and completeness against the
// brute-force baseline are exercised by tests/sliced_detect_test.cc.
DefinitelyResult detect_definitely_sliced(const Computation& comp,
                                          std::int64_t max_cuts,
                                          std::size_t threads) {
  if (threads == 0) (void)common::ThreadPool::default_threads();
  const slice::ComputationInput in(comp);
  const std::size_t n = in.num_slots();
  DefinitelyResult res;

  // Every observation starts at the bottom cut; if it satisfies, done.
  bool bottom_sat = true;
  for (std::size_t s = 0; s < n && bottom_sat; ++s)
    if (!in.pred(s, 1)) bottom_sat = false;
  if (bottom_sat) {
    res.definitely = true;
    res.cuts_explored = 1;
    res.trace_store = comp.trace_store_stats();
    return res;
  }

  // Collect the false intervals.
  std::vector<FalseInterval> ivs;
  for (std::size_t s = 0; s < n; ++s) {
    const StateIndex last = in.num_states(s);
    for (StateIndex k = 1; k <= last; ++k) {
      if (in.pred(s, k)) continue;
      FalseInterval iv;
      iv.slot = s;
      iv.lo = k;
      while (k + 1 <= last && !in.pred(s, k + 1)) ++k;
      iv.hi = k;
      ivs.push_back(iv);
    }
  }

  // Seed: intervals containing the initial state anchor from the start.
  std::deque<int> work;
  const auto label = [&](int idx, StateIndex entry, int pred_iv,
                         StateIndex pred_k) {
    FalseInterval& iv = ivs[static_cast<std::size_t>(idx)];
    if (entry >= iv.entry) return;
    iv.entry = entry;
    iv.pred_iv = pred_iv;
    iv.pred_k = pred_k;
    work.push_back(idx);
  };
  for (std::size_t i = 0; i < ivs.size(); ++i)
    if (ivs[i].lo == 1) label(static_cast<int>(i), 1, -1, 0);

  int terminal = -1;
  while (!work.empty() && terminal < 0) {
    const int cur = work.front();
    work.pop_front();
    const FalseInterval iv = ivs[static_cast<std::size_t>(cur)];
    if (iv.hi == in.num_states(iv.slot)) {
      terminal = cur;
      break;
    }
    for (std::size_t j = 0; j < ivs.size(); ++j) {
      const FalseInterval& to = ivs[j];
      if (to.slot == iv.slot) continue;  // same-process states never concur
      // Minimal handoff state l in [to.lo, to.hi]: the anchor holds some
      // k in [entry, hi] with (iv.slot, k) || (to.slot, l). The smallest
      // admissible k is optimal because causal floors grow with k.
      for (StateIndex l = to.lo; l <= to.hi; ++l) {
        ++res.cuts_explored;
        if (max_cuts >= 0 && res.cuts_explored >= max_cuts) {
          res.truncated = true;
          res.trace_store = comp.trace_store_stats();
          return res;
        }
        const StateIndex k0 =
            std::max(iv.entry, in.causal_floor(to.slot, l, iv.slot) + 1);
        if (k0 > iv.hi) continue;
        if (in.causal_floor(iv.slot, k0, to.slot) < l) {
          label(static_cast<int>(j), l, cur, k0);
          break;
        }
      }
    }
  }

  if (terminal < 0) {
    // No anchor chain reaches the top of any process: every observation
    // eventually runs out of false states and hits a satisfying cut.
    res.definitely = true;
    res.trace_store = comp.trace_store_stats();
    return res;
  }

  res.definitely = false;
  // Witness: a consistent, non-satisfying cut the discovered avoiding
  // observation passes through — the first handoff's boundary cut, or the
  // bottom cut when a single interval spans its whole process.
  std::vector<int> chain;
  for (int i = terminal; i >= 0; i = ivs[static_cast<std::size_t>(i)].pred_iv)
    chain.push_back(i);
  std::reverse(chain.begin(), chain.end());
  if (chain.size() == 1) {
    res.witness.assign(n, 1);
  } else {
    const FalseInterval& second = ivs[static_cast<std::size_t>(chain[1])];
    const FalseInterval& first = ivs[static_cast<std::size_t>(chain[0])];
    std::vector<StateIndex> bounds(n, 1);
    bounds[first.slot] = second.pred_k;
    bounds[second.slot] = second.entry;
    const auto witness = slice::least_consistent_cut(in, bounds);
    WCP_CHECK_MSG(witness.has_value(),
                  "handoff pair must extend to a consistent cut");
    res.witness = *witness;
  }
  res.trace_store = comp.trace_store_stats();
  return res;
}

SliceOnlineResult run_slice_online(const Computation& comp,
                                   const RunOptions& opts,
                                   std::int64_t count_cap) {
  const auto preds = comp.predicate_processes();
  WCP_REQUIRE(!preds.empty(), "empty predicate");

  sim::Network net(network_config(opts, comp.num_processes()));

  slice::OnlineSlicer::Config sc;
  sc.slot_to_pid.assign(preds.begin(), preds.end());
  auto slicer = std::make_unique<slice::OnlineSlicer>(std::move(sc));
  auto* slicer_ptr = slicer.get();
  net.add_node(sim::NodeAddr::coordinator(), std::move(slicer));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.snapshot_all_states = true;
  app::install_app_drivers(
      net, comp, drv, [](ProcessId) { return sim::NodeAddr::coordinator(); });

  net.start_and_run(opts.max_events);

  SliceOnlineResult r;
  r.detected = slicer_ptr->detected();
  r.cut = slicer_ptr->cut();
  r.detect_time = slicer_ptr->detect_time();
  r.states_received = slicer_ptr->states_received();
  r.jil_advances = slicer_ptr->jil_advances();
  r.clock_lookups = slicer_ptr->clock_lookups();

  // Slice of the received stream (the full computation on undetected or
  // late-detection runs), for the pruning counters.
  const slice::SnapshotInput si(slicer_ptr->states());
  const auto sl = slice::Slice::build(si);
  r.slice_groups = sl.num_groups();
  r.slice_edges = sl.num_edges();
  const auto cc = sl.num_cuts(count_cap);
  r.slice_cuts = cc.count;
  r.slice_cuts_saturated = cc.saturated;

  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  return r;
}

std::vector<std::pair<std::string, MetricValue>> slice_report_metrics(
    const SliceOnlineResult& r) {
  return {
      {"detected", r.detected ? 1 : 0},
      {"states_received", r.states_received},
      {"jil_advances", r.jil_advances},
      {"clock_lookups", r.clock_lookups},
      {"slice_groups", r.slice_groups},
      {"slice_edges", r.slice_edges},
      {"slice_cuts", r.slice_cuts},
      {"slice_cuts_saturated", r.slice_cuts_saturated ? 1 : 0},
  };
}

}  // namespace wcp::detect
