#include "detect/centralized.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

CentralizedChecker::CentralizedChecker(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "checker needs shared detection state");
  queues_.resize(n());
  in_dirty_.assign(n(), false);
}

void CentralizedChecker::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "checker got unexpected " << to_string(p.kind));
  if (p.kind == MsgKind::kControl) return;  // end-of-stream marker

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  // All buffering happens at the checker: this is precisely the O(n^2 m)
  // space concentration the distributed algorithm removes (§3.4).
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);
  // Receiving and storing an O(n)-word snapshot costs O(n) — the same unit
  // the token monitors pay per candidate, so work totals are comparable.
  net().add_monitor_work(coord, static_cast<std::int64_t>(n()));

  int slot = -1;
  for (std::size_t s = 0; s < n(); ++s)
    if (cfg_.slot_to_pid[s] == p.from.pid) {
      slot = static_cast<int>(s);
      break;
    }
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);

  auto& q = queues_[static_cast<std::size_t>(slot)];
  q.push_back(std::move(snap));
  if (q.size() == 1 && !in_dirty_[static_cast<std::size_t>(slot)]) {
    dirty_.push_back(static_cast<std::size_t>(slot));
    in_dirty_[static_cast<std::size_t>(slot)] = true;
  }
  process();
}

void CentralizedChecker::pop_head(std::size_t s) {
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, -queues_[s].front().bytes(), -1);
  queues_[s].pop_front();
  ++eliminations_;
  if (!queues_[s].empty() && !in_dirty_[s]) {
    dirty_.push_back(s);
    in_dirty_[s] = true;
  }
}

void CentralizedChecker::process() {
  const ProcessId coord(static_cast<int>(net().num_processes()));

  while (!dirty_.empty()) {
    const std::size_t s = dirty_.front();
    dirty_.pop_front();
    in_dirty_[s] = false;
    if (queues_[s].empty()) continue;  // re-queued when a head arrives

    bool s_eliminated = false;
    const VectorClock& head_s = queues_[s].front().vclock;
    for (std::size_t t = 0; t < n() && !s_eliminated; ++t) {
      if (t == s || queues_[t].empty()) continue;
      const VectorClock& head_t = queues_[t].front().vclock;
      net().add_monitor_work(coord, 1);
      // Own-component happened-before tests (O(1) each).
      if (head_t[s] >= head_s[s]) {
        // head_s -> head_t: eliminate s.
        pop_head(s);
        s_eliminated = true;
      } else if (head_s[t] >= head_t[t]) {
        // head_t -> head_s: eliminate t.
        pop_head(t);
      }
    }
    if (s_eliminated) continue;
  }

  // dirty empty: all present heads are pairwise concurrent. Detection needs
  // all n heads present.
  for (std::size_t s = 0; s < n(); ++s)
    if (queues_[s].empty()) return;

  auto& shared = *cfg_.shared;
  shared.detected = true;
  shared.cut.resize(n());
  for (std::size_t s = 0; s < n(); ++s)
    shared.cut[s] = queues_[s].front().vclock[s];
  shared.detect_time = net().simulator().now();
  net().simulator().stop();
}

DetectionResult run_centralized(const Computation& comp,
                                const RunOptions& opts) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  sim::Network net(network_config(opts, comp.num_processes()));

  auto shared = std::make_shared<SharedDetection>();
  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());

  CentralizedChecker::Config cc;
  cc.slot_to_pid = slot_to_pid;
  cc.shared = shared;
  net.add_node(sim::NodeAddr::coordinator(),
               std::make_unique<CentralizedChecker>(std::move(cc)));

  // All predicate processes stream snapshots straight to the checker.
  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.compress_clocks = opts.compress_clocks;
  app::install_app_drivers(
      net, comp, drv, [](ProcessId) { return sim::NodeAddr::coordinator(); });

  net.start_and_run(opts.max_events);

  DetectionResult r;
  finish_result(r, net, *shared);
  return r;
}

}  // namespace wcp::detect
