#include "detect/centralized.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

CentralizedChecker::CentralizedChecker(Config cfg)
    : cfg_(std::move(cfg)), stream_(states_) {
  WCP_REQUIRE(cfg_.shared != nullptr, "checker needs shared detection state");
  states_.resize(n());
  app::CoreHooks hooks;
  // Comparisons and head eliminations happen inside the core; forward them
  // into the coordinator's metrics at the same call sites as before the
  // extraction (byte-identical reports).
  hooks.work = [this](std::int64_t units) {
    const ProcessId coord(static_cast<int>(net().num_processes()));
    net().add_monitor_work(coord, units);
  };
  hooks.released = [this](std::size_t s, StateIndex pos) {
    const ProcessId coord(static_cast<int>(net().num_processes()));
    net().monitor_buffer_change(
        coord, -states_[s][static_cast<std::size_t>(pos - 1)].bytes(), -1);
  };
  core_ = std::make_unique<CentralizedCore>(stream_, std::move(hooks));
}

void CentralizedChecker::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "checker got unexpected " << to_string(p.kind));
  if (p.kind == MsgKind::kControl) return;  // end-of-stream marker

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  // All buffering happens at the checker: this is precisely the O(n^2 m)
  // space concentration the distributed algorithm removes (§3.4).
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);
  // Receiving and storing an O(n)-word snapshot costs O(n) — the same unit
  // the token monitors pay per candidate, so work totals are comparable.
  net().add_monitor_work(coord, static_cast<std::int64_t>(n()));

  int slot = -1;
  for (std::size_t s = 0; s < n(); ++s)
    if (cfg_.slot_to_pid[s] == p.from.pid) {
      slot = static_cast<int>(s);
      break;
    }
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);
  const auto su = static_cast<std::size_t>(slot);

  states_[su].push_back(std::move(snap));
  core_->on_state(su);

  if (core_->done() && core_->detected()) {
    auto& shared = *cfg_.shared;
    shared.detected = true;
    shared.cut = core_->cut();
    shared.detect_time = net().simulator().now();
    net().simulator().stop();
  }
}

DetectionResult run_centralized(const Computation& comp,
                                const RunOptions& opts) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");

  sim::Network net(network_config(opts, comp.num_processes()));

  auto shared = std::make_shared<SharedDetection>();
  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());

  CentralizedChecker::Config cc;
  cc.slot_to_pid = slot_to_pid;
  cc.shared = shared;
  net.add_node(sim::NodeAddr::coordinator(),
               std::make_unique<CentralizedChecker>(std::move(cc)));

  // All predicate processes stream snapshots straight to the checker.
  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.compress_clocks = opts.compress_clocks;
  app::install_app_drivers(
      net, comp, drv, [](ProcessId) { return sim::NodeAddr::coordinator(); });

  net.start_and_run(opts.max_events);

  DetectionResult r;
  finish_result(r, net, *shared);
  return r;
}

}  // namespace wcp::detect
