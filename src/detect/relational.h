// General (including relational) global predicates over program variables —
// the Cooper-Marzullo capability the paper cites ([3]; relational
// predicates are [13]).
//
// The predicate is any callback over the variable bindings of a global
// state (one Env per process). Detection is possibly(Φ): breadth-first
// search of the lattice of consistent cuts over all processes — the
// exponential cost that motivates the paper's WCP-specialized algorithms,
// but the only general technique for, e.g., x_0 + x_1 + x_2 > K.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/cut_storage.h"
#include "predicate/program.h"

namespace wcp::detect {

/// Evaluated on the cut's bindings: envs[p] is process p's variables.
using GlobalPredicate = std::function<bool(std::span<const pred::Env> envs)>;

struct GeneralResult {
  bool detected = false;
  bool truncated = false;
  std::vector<StateIndex> cut;  // width N (all processes)
  std::int64_t cuts_explored = 0;
  CutStorageStats storage;  ///< measured cut-storage footprint
};

/// possibly(Φ) over the variable traces. Explores at most `max_cuts`
/// consistent cuts (<0: unbounded).
GeneralResult detect_possibly_general(const pred::VarComputation& vc,
                                      const GlobalPredicate& phi,
                                      std::int64_t max_cuts = -1);

}  // namespace wcp::detect
