#include "detect/boolean.h"

#include <algorithm>

#include "common/error.h"

namespace wcp::detect {

namespace {

// Advance-candidate first-cut search restricted to the given processes and
// admissible-state lists (same strategy as Computation::first_wcp_cut).
std::optional<std::vector<StateIndex>> first_cut(
    const Computation& comp, std::span<const ProcessId> procs,
    const std::vector<std::vector<StateIndex>>& cand) {
  const std::size_t w = procs.size();
  std::vector<std::size_t> pos(w, 0);
  for (std::size_t s = 0; s < w; ++s)
    if (cand[s].empty()) return std::nullopt;

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < w && !changed; ++s) {
      for (std::size_t t = 0; t < w; ++t) {
        if (s == t) continue;
        if (comp.happened_before(procs[s], cand[s][pos[s]], procs[t],
                                 cand[t][pos[t]])) {
          if (++pos[s] >= cand[s].size()) return std::nullopt;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<StateIndex> cut(w);
  for (std::size_t s = 0; s < w; ++s) cut[s] = cand[s][pos[s]];
  return cut;
}

}  // namespace

DnfResult detect_dnf(const Computation& comp,
                     std::span<const Conjunct> disjuncts) {
  const auto preds = comp.predicate_processes();
  DnfResult res;
  res.satisfiable.assign(disjuncts.size(), false);

  for (std::size_t d = 0; d < disjuncts.size(); ++d) {
    const Conjunct& conj = disjuncts[d];
    WCP_REQUIRE(!conj.empty(), "empty conjunct " << d);

    std::vector<ProcessId> procs;
    std::vector<std::vector<StateIndex>> cand;
    std::vector<bool> seen(preds.size(), false);
    for (const Literal& lit : conj) {
      WCP_REQUIRE(lit.slot >= 0 &&
                      static_cast<std::size_t>(lit.slot) < preds.size(),
                  "literal slot " << lit.slot << " out of range");
      WCP_REQUIRE(!seen[static_cast<std::size_t>(lit.slot)],
                  "slot " << lit.slot << " repeated in conjunct " << d);
      seen[static_cast<std::size_t>(lit.slot)] = true;
      const ProcessId p = preds[static_cast<std::size_t>(lit.slot)];
      procs.push_back(p);
      std::vector<StateIndex> states;
      for (StateIndex k = 1; k <= comp.num_states(p); ++k)
        if (comp.local_pred(p, k) != lit.negated) states.push_back(k);
      cand.push_back(std::move(states));
    }

    const auto cut = first_cut(comp, procs, cand);
    res.satisfiable[d] = cut.has_value();
    if (cut && !res.detected) {
      res.detected = true;
      res.disjunct = static_cast<int>(d);
      res.procs = std::move(procs);
      res.cut = *cut;
    }
  }
  return res;
}

}  // namespace wcp::detect
