// Cooper–Marzullo style global-state lattice detection — the general
// baseline discussed in §1 of the paper.
//
// Enumerates the lattice of consistent cuts over the predicate processes in
// level (breadth-first) order until a cut satisfying the WCP is found. This
// detects *possibly(phi)* for arbitrary phi; for a WCP the first satisfying
// cut found at the minimal level is exactly the pointwise-minimal cut the
// token algorithms return (satisfying cuts of a conjunction are closed
// under pointwise meet), which the tests exploit.
//
// The number of cuts explored can grow as O(m^n) — the cost that motivates
// the paper's algorithms; bench E10 measures the blowup.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "trace/computation.h"

namespace wcp::detect {

struct LatticeResult {
  bool detected = false;
  /// Reached the exploration cap before finding a satisfying cut.
  bool truncated = false;
  std::vector<StateIndex> cut;       // width n, predicate-slot order
  std::int64_t cuts_explored = 0;    // distinct consistent cuts visited
  std::int64_t max_frontier = 0;     // peak BFS frontier size
};

/// Explores at most `max_cuts` consistent cuts (<0: unbounded).
LatticeResult detect_lattice(const Computation& comp,
                             std::int64_t max_cuts = -1);

/// Cooper-Marzullo definitely(WCP): true iff EVERY observation (every
/// maximal path through the lattice of consistent cuts) passes through a
/// cut satisfying the WCP. Computed as the complement of reachability of
/// the top cut through non-satisfying cuts only.
struct DefinitelyResult {
  bool definitely = false;
  bool truncated = false;
  std::int64_t cuts_explored = 0;
  /// When definitely == false (and not truncated): a consistent,
  /// non-satisfying cut proving it — the first cut where a discovered
  /// avoiding observation diverges past the pointwise-minimal satisfying
  /// cut. When the predicate never holds at all, every observation avoids
  /// it from the start and the witness is the bottom cut. Empty when
  /// definitely == true or the search was truncated.
  std::vector<StateIndex> witness;
};

DefinitelyResult detect_definitely(const Computation& comp,
                                   std::int64_t max_cuts = -1);

}  // namespace wcp::detect
