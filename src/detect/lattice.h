// Cooper–Marzullo style global-state lattice detection — the general
// baseline discussed in §1 of the paper.
//
// Enumerates the lattice of consistent cuts over the predicate processes in
// level (breadth-first) order until a cut satisfying the WCP is found. This
// detects *possibly(phi)* for arbitrary phi; for a WCP the first satisfying
// cut found at the minimal level is exactly the pointwise-minimal cut the
// token algorithms return (satisfying cuts of a conjunction are closed
// under pointwise meet), which the tests exploit.
//
// The number of cuts explored can grow as O(m^n) — the cost that motivates
// the paper's algorithms; bench E10 measures the blowup.
//
// Both detectors accept a `threads` parameter. threads == 1 (the default)
// runs the reference serial BFS; threads > 1 runs the barrier-free
// concurrent engine (ALGORITHMS.md §15): lanes pop cut handles from a
// work-stealing frontier in arbitrary order, intern successors exactly
// once through a lockless CAS-published hash table over per-lane arena
// segments (incremental Zobrist hashing, O(1) per advance), and record
// each cut's successor handles. A deterministic serial replay then walks
// the recorded successor graph in exact serial BFS order, so verdict, cut,
// cuts_explored, max_frontier, and witness_path are byte-identical to the
// serial path at every thread count (tests/flat_storage_equiv_test.cc
// byte-diffs full JSON reports at threads 1/2/4/8).
// threads == 0 resolves to common::ThreadPool::default_threads()
// (WCP_THREADS env var — which must be a positive integer — else
// hardware_concurrency()).
// Cut storage: both detectors keep every visited cut in flat arenas
// (common/cut_storage.h) — packed 32-bit components, open-addressing
// dedup tables with precomputed hashes, dense-handle parent vectors —
// instead of per-cut heap-allocated std::vector<StateIndex> nodes. The
// `storage` block of the results reports the measured footprint; it is
// the one field that legitimately varies with the thread count (the
// parallel path shards its arenas), so equivalence checks compare
// everything *except* `storage`.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/cut_storage.h"
#include "common/types.h"
#include "trace/computation.h"
#include "trace/trace_store_stats.h"

namespace wcp::detect {

struct LatticeResult {
  bool detected = false;
  /// Reached the exploration cap before finding a satisfying cut.
  bool truncated = false;
  std::vector<StateIndex> cut;       // width n, predicate-slot order
  std::int64_t cuts_explored = 0;    // distinct consistent cuts visited
  std::int64_t max_frontier = 0;     // peak BFS frontier size
  /// When detected: the BFS path from the bottom cut to `cut`, one advanced
  /// slot per step, rebuilt from the stored parent offsets (ltsmin-style) —
  /// the full predecessor cuts are never retained. Expand with
  /// materialize_witness_path. Identical for every thread count.
  std::vector<std::uint32_t> witness_path;
  CutStorageStats storage;           // measured cut-storage footprint
  TraceStoreStats trace_store;       // clock-store footprint (thread-invariant)
};

/// Explores at most `max_cuts` consistent cuts (<0: unbounded). `threads`:
/// 1 = serial reference BFS, 0 = ThreadPool::default_threads(), otherwise
/// the level-parallel BFS on that many lanes (identical results).
LatticeResult detect_lattice(const Computation& comp,
                             std::int64_t max_cuts = -1,
                             std::size_t threads = 1);

/// Cooper-Marzullo definitely(WCP): true iff EVERY observation (every
/// maximal path through the lattice of consistent cuts) passes through a
/// cut satisfying the WCP. Computed as the complement of reachability of
/// the top cut through non-satisfying cuts only.
struct DefinitelyResult {
  bool definitely = false;
  bool truncated = false;
  std::int64_t cuts_explored = 0;
  /// When definitely == false (and not truncated): a consistent,
  /// non-satisfying cut proving it — the first cut where a discovered
  /// avoiding observation diverges past the pointwise-minimal satisfying
  /// cut. When the predicate never holds at all, every observation avoids
  /// it from the start and the witness is the bottom cut. Empty when
  /// definitely == true or the search was truncated.
  std::vector<StateIndex> witness;
  /// When definitely == false: the avoiding observation as advanced slots
  /// from the bottom cut to the top cut, rebuilt from stored BFS parent
  /// offsets (`witness` is the first cut on it that diverges past the
  /// minimal satisfying cut). Identical for every thread count.
  std::vector<std::uint32_t> witness_path;
  CutStorageStats storage;  ///< measured cut-storage footprint
  TraceStoreStats trace_store;  ///< clock-store footprint (thread-invariant)
};

DefinitelyResult detect_definitely(const Computation& comp,
                                   std::int64_t max_cuts = -1,
                                   std::size_t threads = 1);

/// Expands a parent-offset witness path into the cut sequence it encodes:
/// result[0] is the bottom cut (all 1s, width n) and result[t+1] advances
/// slot path[t] of result[t] by one state.
std::vector<std::vector<StateIndex>> materialize_witness_path(
    std::size_t n, std::span<const std::uint32_t> path);

}  // namespace wcp::detect
