// Chandy-Lamport distributed snapshots — reference [2] of the paper, the
// classic algorithm for STABLE global predicates, implemented here as the
// baseline the paper's unstable-predicate detectors improve on.
//
// A coordinator initiates a snapshot round; the initiating application
// process records its local state and floods marker messages; every process
// records on first marker, records each incoming channel until that
// channel's marker arrives, and reports (local state, local predicate,
// per-channel message counts) to the coordinator. Rounds repeat until the
// coordinator's stable-predicate callback accepts a snapshot or the round
// budget is exhausted.
//
// Model notes:
//  * Requires FIFO application channels (run with fifo_all = true) — the
//    classic CL assumption.
//  * "Receive" is the *consumption* of a message by the replay script, so
//    markers are processed in channel order relative to consumed messages
//    (deferred while earlier channel messages sit in the reorder buffer).
//    This keeps the recorded cut consistent with the Computation's
//    happened-before relation, which the tests verify.
//  * A snapshot round only completes on runs that consume every delivered
//    message (undelivered in-flight messages would defer a marker forever).
//
// The point of the comparison (tests/chandy_lamport_test.cc, bench E13):
// CL observes a stable predicate only at the NEXT snapshot after it became
// true — and can miss unstable predicates entirely — while the paper's
// detectors catch the exact first cut online.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "app/snapshot.h"
#include "detect/result.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

// Protocol payloads (ClMarker / ClInitiate / ClReport) live in
// app/snapshot.h; the application drivers participate in the protocol.

/// One completed snapshot round.
struct ClSnapshot {
  int round = 0;
  SimTime completed_at = 0;
  std::vector<StateIndex> cut;                          // width N
  std::vector<bool> pred;                               // width N
  std::vector<std::vector<std::int64_t>> channel;       // [from][to]

  [[nodiscard]] std::int64_t total_in_channels() const;
  /// The stable predicate of distributed termination: everyone passive,
  /// all channels empty.
  [[nodiscard]] bool all_passive_and_empty() const;
};

struct ClOptions {
  SimTime first_round_at = 1;     ///< virtual time of the first initiation
  SimTime inter_round_delay = 25; ///< delay between rounds
  int max_rounds = 64;
  /// Accepts a snapshot; detection stops the run. Defaults to
  /// all_passive_and_empty (termination detection).
  std::function<bool(const ClSnapshot&)> stable_predicate;
};

struct ClResult {
  bool detected = false;
  std::vector<ClSnapshot> snapshots;  ///< every completed round
  SimTime detect_time = 0;
  SimTime end_time = 0;
  Metrics app_metrics;
  Metrics monitor_metrics;  ///< coordinator slot only
};

/// Runs repeated Chandy-Lamport snapshot rounds over a replay of `comp`
/// (with FIFO channels) until the stable predicate holds on a snapshot.
ClResult run_chandy_lamport(const Computation& comp, const RunOptions& opts,
                            const ClOptions& cl = {});

}  // namespace wcp::detect
