#include "detect/result.h"

#include <ostream>

#include "common/json.h"

namespace wcp::detect {

namespace {

void write_cut(json::Writer& w, const std::vector<StateIndex>& cut) {
  w.begin_array();
  for (StateIndex s : cut) w.value(static_cast<std::int64_t>(s));
  w.end_array();
}

}  // namespace

void DetectionResult::write_json(json::Writer& w, bool include_wall_clock,
                                 bool per_process) const {
  w.begin_object();
  w.field("detected", detected);
  w.key("cut");
  write_cut(w, cut);
  if (!full_cut.empty()) {
    w.key("full_cut");
    write_cut(w, full_cut);
  }
  if (!frozen_cut.empty()) {
    w.key("frozen_cut");
    write_cut(w, frozen_cut);
  }
  w.field("detect_time", static_cast<std::int64_t>(detect_time));
  w.field("end_time", static_cast<std::int64_t>(end_time));
  w.field("token_hops", token_hops);
  w.key("sim");
  stats.write_json(w, include_wall_clock);
  w.key("app");
  app_metrics.write_json(w, per_process);
  w.key("monitor");
  monitor_metrics.write_json(w, per_process);
  w.end_object();
}

std::ostream& operator<<(std::ostream& os, const DetectionResult& r) {
  os << (r.detected ? "DETECTED" : "not-detected");
  if (r.detected) {
    os << " cut=[";
    for (std::size_t s = 0; s < r.cut.size(); ++s) {
      if (s) os << ',';
      os << r.cut[s];
    }
    os << ']';
  }
  os << " t_detect=" << r.detect_time << " t_end=" << r.end_time
     << " hops=" << r.token_hops;
  return os;
}

}  // namespace wcp::detect
