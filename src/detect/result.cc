#include "detect/result.h"

#include <ostream>

#include "common/json.h"
#include "sim/network.h"

namespace wcp::detect {

namespace {

void write_cut(json::Writer& w, const std::vector<StateIndex>& cut) {
  w.begin_array();
  for (StateIndex s : cut) w.value(static_cast<std::int64_t>(s));
  w.end_array();
}

}  // namespace

void DetectionResult::write_json(json::Writer& w, bool include_wall_clock,
                                 bool per_process) const {
  w.begin_object();
  w.field("detected", detected);
  w.key("cut");
  write_cut(w, cut);
  if (!full_cut.empty()) {
    w.key("full_cut");
    write_cut(w, full_cut);
  }
  if (!frozen_cut.empty()) {
    w.key("frozen_cut");
    write_cut(w, frozen_cut);
  }
  w.field("detect_time", static_cast<std::int64_t>(detect_time));
  w.field("end_time", static_cast<std::int64_t>(end_time));
  w.field("token_hops", token_hops);
  w.key("sim");
  stats.write_json(w, include_wall_clock);
  w.key("app");
  app_metrics.write_json(w, per_process);
  w.key("monitor");
  monitor_metrics.write_json(w, per_process);
  // Only present on faulty runs, keeping fault-free reports byte-identical
  // to earlier schema revisions.
  if (faults.any()) {
    w.key("faults");
    faults.write_json(w);
  }
  // Same rule for the trace store: only runs that materialized it (offline
  // detectors reading ground-truth clocks) emit the block, and its counters
  // are thread-invariant, so cross-thread report diffs stay clean.
  if (trace_store.materialized()) {
    w.key("trace_store");
    w.begin_object();
    w.field("peak_bytes", trace_store.peak_bytes);
    w.field("clocks_interned", trace_store.clocks_interned);
    w.field("delta_entries", trace_store.delta_entries);
    w.field("delta_ratio", trace_store.delta_ratio);
    w.end_object();
  }
  w.end_object();
}

sim::NetworkConfig network_config(const RunOptions& opts,
                                  std::size_t num_processes) {
  sim::NetworkConfig ncfg;
  ncfg.num_processes = num_processes;
  ncfg.latency = opts.latency;
  ncfg.monitor_latency = opts.monitor_latency;
  ncfg.fifo_all = opts.fifo_all;
  ncfg.seed = opts.seed;
  ncfg.faults = opts.faults;
  ncfg.reliable = opts.reliable;
  ncfg.reliable_all = opts.faults.enabled();
  return ncfg;
}

TokenRecoveryOptions effective_recovery(const RunOptions& opts) {
  TokenRecoveryOptions rec = opts.recovery;
  rec.enabled = rec.enabled || opts.faults.has_crashes();
  return rec;
}

void finish_result(DetectionResult& r, sim::Network& net,
                   const SharedDetection& shared) {
  r.detected = shared.detected;
  r.cut = shared.cut;
  r.detect_time = shared.detect_time;
  r.end_time = net.simulator().now();
  r.sim_events = net.simulator().events_processed();
  r.stats = net.run_stats();
  r.token_hops = net.monitor_metrics().token_hops();
  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  r.faults = net.fault_counters();
}

std::ostream& operator<<(std::ostream& os, const DetectionResult& r) {
  os << (r.detected ? "DETECTED" : "not-detected");
  if (r.detected) {
    os << " cut=[";
    for (std::size_t s = 0; s < r.cut.size(); ++s) {
      if (s) os << ',';
      os << r.cut[s];
    }
    os << ']';
  }
  os << " t_detect=" << r.detect_time << " t_end=" << r.end_time
     << " hops=" << r.token_hops;
  return os;
}

}  // namespace wcp::detect
