#include "detect/result.h"

#include <ostream>

namespace wcp::detect {

std::ostream& operator<<(std::ostream& os, const DetectionResult& r) {
  os << (r.detected ? "DETECTED" : "not-detected");
  if (r.detected) {
    os << " cut=[";
    for (std::size_t s = 0; s < r.cut.size(); ++s) {
      if (s) os << ',';
      os << r.cut[s];
    }
    os << ']';
  }
  os << " t_detect=" << r.detect_time << " t_end=" << r.end_time
     << " hops=" << r.token_hops;
  return os;
}

}  // namespace wcp::detect
