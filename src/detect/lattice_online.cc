#include "detect/lattice_online.h"

#include <utility>

#include "app/app_driver.h"
#include "common/error.h"

namespace wcp::detect {

LatticeChecker::LatticeChecker(Config cfg)
    : cfg_(std::move(cfg)), stream_(states_) {
  WCP_REQUIRE(cfg_.shared != nullptr, "checker needs shared detection state");
  states_.resize(n());
  app::CoreHooks hooks;
  hooks.work = [this](std::int64_t units) {
    const ProcessId coord(static_cast<int>(net().num_processes()));
    net().add_monitor_work(coord, units);
  };
  core_ = std::make_unique<LatticeOnlineCore>(stream_, std::move(hooks),
                                              cfg_.max_cuts);
}

void LatticeChecker::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "lattice checker got unexpected " << to_string(p.kind));
  if (p.kind == MsgKind::kControl || core_->truncated()) return;

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);

  if (slot_of_pid_.empty()) {
    slot_of_pid_.assign(net().num_processes(), -1);
    for (std::size_t s = 0; s < n(); ++s)
      slot_of_pid_[cfg_.slot_to_pid[s].idx()] = static_cast<int>(s);
  }
  const int slot = slot_of_pid_.at(p.from.pid.idx());
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);
  const auto su = static_cast<std::size_t>(slot);

  // FIFO app->checker gives states in order; index == own clock component.
  const StateIndex k = snap.vclock[su];
  WCP_CHECK_MSG(k == static_cast<StateIndex>(states_[su].size()) + 1,
                "state stream gap at slot " << slot);
  states_[su].push_back(std::move(snap));

  core_->on_state(su);
  if (core_->done() && core_->detected()) {
    auto& shared = *cfg_.shared;
    shared.detected = true;
    shared.cut = core_->cut();
    shared.detect_time = net().simulator().now();
    net().simulator().stop();
  }
}

LatticeOnlineResult run_lattice_online(const Computation& comp,
                                       const RunOptions& opts,
                                       std::int64_t max_cuts) {
  const auto preds = comp.predicate_processes();
  WCP_REQUIRE(!preds.empty(), "empty predicate");

  sim::Network net(network_config(opts, comp.num_processes()));

  auto shared = std::make_shared<SharedDetection>();
  LatticeChecker::Config lc;
  lc.slot_to_pid.assign(preds.begin(), preds.end());
  lc.shared = shared;
  lc.max_cuts = max_cuts;
  auto checker = std::make_unique<LatticeChecker>(std::move(lc));
  auto* checker_ptr = checker.get();
  net.add_node(sim::NodeAddr::coordinator(), std::move(checker));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.snapshot_all_states = true;
  app::install_app_drivers(
      net, comp, drv, [](ProcessId) { return sim::NodeAddr::coordinator(); });

  net.start_and_run(opts.max_events);

  LatticeOnlineResult r;
  r.detected = shared->detected;
  r.cut = shared->cut;
  r.truncated = !shared->detected && max_cuts >= 0 &&
                checker_ptr->cuts_explored() > max_cuts;
  r.cuts_explored = checker_ptr->cuts_explored();
  r.max_frontier = checker_ptr->max_frontier();
  r.detect_time = shared->detect_time;
  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  r.storage = checker_ptr->storage();
  return r;
}

}  // namespace wcp::detect
