#include "detect/lattice_online.h"

#include <algorithm>
#include <utility>

#include "app/app_driver.h"
#include "common/cut_hash.h"
#include "common/error.h"

namespace wcp::detect {

LatticeChecker::LatticeChecker(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "checker needs shared detection state");
  states_.resize(n());
  visited_arena_ = CutArena(n());
  // Seed the search with the bottom cut (always consistent).
  const std::vector<StateIndex> bottom(n(), 1);
  enqueue(visited_table_.intern(visited_arena_, bottom, CutHash{}(bottom))
              .handle);
}

void LatticeChecker::enqueue(CutHandle h) {
  StateIndex level = 0;
  for (const std::uint32_t k : visited_arena_.get(h))
    level += static_cast<StateIndex>(k);
  ready_.push(Entry{level, seq_++, h});
}

void LatticeChecker::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kSnapshot || p.kind == MsgKind::kControl,
                "lattice checker got unexpected " << to_string(p.kind));
  if (p.kind == MsgKind::kControl || gave_up_) return;

  auto snap = std::any_cast<app::VcSnapshot>(std::move(p.payload));
  const ProcessId coord(static_cast<int>(net().num_processes()));
  net().monitor_buffer_change(coord, snap.bytes(), +1);

  if (slot_of_pid_.empty()) {
    slot_of_pid_.assign(net().num_processes(), -1);
    for (std::size_t s = 0; s < n(); ++s)
      slot_of_pid_[cfg_.slot_to_pid[s].idx()] = static_cast<int>(s);
  }
  const int slot = slot_of_pid_.at(p.from.pid.idx());
  WCP_CHECK_MSG(slot >= 0, "snapshot from non-predicate process " << p.from);
  const auto su = static_cast<std::size_t>(slot);

  // FIFO app->checker gives states in order; index == own clock component.
  const StateIndex k = snap.vclock[su];
  WCP_CHECK_MSG(k == static_cast<StateIndex>(states_[su].size()) + 1,
                "state stream gap at slot " << slot);
  states_[su].push_back(std::move(snap));

  // Wake every cut that was waiting for exactly this state.
  auto it = parked_.find({su, k});
  if (it != parked_.end()) {
    for (const CutHandle h : it->second) enqueue(h);
    parked_.erase(it);
  }
  drain();
}

bool LatticeChecker::available(const std::vector<StateIndex>& cut) const {
  for (std::size_t s = 0; s < n(); ++s)
    if (cut[s] > static_cast<StateIndex>(states_[s].size())) return false;
  return true;
}

void LatticeChecker::drain() {
  const ProcessId coord(static_cast<int>(net().num_processes()));
  const CutHash hasher;

  while (!ready_.empty()) {
    const CutHandle handle = ready_.top().cut;
    ready_.pop();
    visited_arena_.copy_to(handle, scratch_);
    std::vector<StateIndex>& cut = scratch_;

    if (!available(cut)) {
      // Park on the first missing component.
      for (std::size_t s = 0; s < n(); ++s) {
        if (cut[s] > static_cast<StateIndex>(states_[s].size())) {
          parked_[{s, cut[s]}].push_back(handle);
          break;
        }
      }
      continue;
    }

    // Cuts that travelled through the parked path were generated before
    // their advanced state's clock was known, so consistency could not be
    // checked then; validate every popped cut here.
    {
      bool consistent = true;
      for (std::size_t s = 0; s < n() && consistent; ++s) {
        const VectorClock& vs = snap(s, cut[s]).vclock;
        for (std::size_t t = s + 1; t < n() && consistent; ++t) {
          net().add_monitor_work(coord, 1);
          const VectorClock& vt = snap(t, cut[t]).vclock;
          if (vs[t] >= cut[t] || vt[s] >= cut[s]) consistent = false;
        }
      }
      if (!consistent) continue;
    }

    ++cuts_explored_;
    max_frontier_ = std::max(
        max_frontier_,
        static_cast<std::int64_t>(ready_.size() + parked_.size()));
    if (cfg_.max_cuts >= 0 && cuts_explored_ > cfg_.max_cuts) {
      gave_up_ = true;
      return;
    }

    bool satisfies = true;
    for (std::size_t s = 0; s < n() && satisfies; ++s)
      if (!snap(s, cut[s]).pred) satisfies = false;
    if (satisfies) {
      auto& shared = *cfg_.shared;
      shared.detected = true;
      shared.cut = cut;
      shared.detect_time = net().simulator().now();
      net().simulator().stop();
      return;
    }

    // Expand consistent successors. Consistency of (s advanced by one)
    // against component t: neither state happened before the other, via
    // the own-component vector-clock test. The advance is done in place on
    // the scratch cut and undone after interning — no temporary vectors.
    for (std::size_t s = 0; s < n(); ++s) {
      cut[s] += 1;
      const std::size_t hash = hasher(cut);
      if (visited_table_.find(visited_arena_, cut, hash) != kNoCut) {
        cut[s] -= 1;
        continue;
      }
      // The advanced state may not have arrived yet; consistency can only
      // be decided with its clock. Park the candidate until it arrives.
      if (cut[s] > static_cast<StateIndex>(states_[s].size())) {
        parked_[{s, cut[s]}].push_back(
            visited_table_.intern(visited_arena_, cut, hash).handle);
        cut[s] -= 1;
        continue;
      }
      const VectorClock& vs = snap(s, cut[s]).vclock;
      bool consistent = true;
      for (std::size_t t = 0; t < n() && consistent; ++t) {
        if (t == s) continue;
        net().add_monitor_work(coord, 1);
        const VectorClock& vt = snap(t, cut[t]).vclock;
        // (t, cut[t]) -> (s, cut[s]) iff vs[t] >= cut[t]; and vice versa.
        if (vs[t] >= cut[t] || vt[s] >= cut[s]) consistent = false;
      }
      if (consistent)
        enqueue(visited_table_.intern(visited_arena_, cut, hash).handle);
      cut[s] -= 1;
    }
  }
}

LatticeOnlineResult run_lattice_online(const Computation& comp,
                                       const RunOptions& opts,
                                       std::int64_t max_cuts) {
  const auto preds = comp.predicate_processes();
  WCP_REQUIRE(!preds.empty(), "empty predicate");

  sim::Network net(network_config(opts, comp.num_processes()));

  auto shared = std::make_shared<SharedDetection>();
  LatticeChecker::Config lc;
  lc.slot_to_pid.assign(preds.begin(), preds.end());
  lc.shared = shared;
  lc.max_cuts = max_cuts;
  auto checker = std::make_unique<LatticeChecker>(std::move(lc));
  auto* checker_ptr = checker.get();
  net.add_node(sim::NodeAddr::coordinator(), std::move(checker));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.snapshot_all_states = true;
  app::install_app_drivers(
      net, comp, drv, [](ProcessId) { return sim::NodeAddr::coordinator(); });

  net.start_and_run(opts.max_events);

  LatticeOnlineResult r;
  r.detected = shared->detected;
  r.cut = shared->cut;
  r.truncated = !shared->detected && max_cuts >= 0 &&
                checker_ptr->cuts_explored() > max_cuts;
  r.cuts_explored = checker_ptr->cuts_explored();
  r.max_frontier = checker_ptr->max_frontier();
  r.detect_time = shared->detect_time;
  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  r.storage = checker_ptr->storage();
  return r;
}

}  // namespace wcp::detect
