#include "detect/batch.h"

#include <optional>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/lattice_online.h"
#include "detect/multi_token.h"
#include "detect/report.h"
#include "detect/sliced.h"
#include "detect/token_vc.h"

namespace wcp::detect {

namespace {

ReportParams sweep_params(const Computation& comp, std::uint64_t seed) {
  ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(comp.predicate_processes().size());
  rp.m = comp.max_messages_per_process();
  rp.seed = seed;
  return rp;
}

std::string flat_report(std::string_view bench, const ReportParams& rp,
                        const std::vector<std::pair<std::string, MetricValue>>&
                            metrics) {
  std::ostringstream oss;
  json::Writer w(oss, 0);
  write_run_report(w, bench, rp, metrics, std::nullopt, std::nullopt);
  return oss.str();
}

SweepRow run_one(const Computation& comp, const SweepJob& job) {
  SweepRow row;
  row.algo = job.algo;
  row.seed = job.seed;
  const ReportParams rp = sweep_params(comp, job.seed);
  const std::string bench = "sweep:" + job.algo;

  const auto lattice_row = [&](bool detected,
                               const std::vector<StateIndex>& cut,
                               std::int64_t cuts_explored,
                               std::int64_t max_frontier, bool truncated) {
    row.verdict = detected;
    row.cut = cut;
    row.cost = cuts_explored;
    row.report = flat_report(bench, rp,
                             {{"detected", detected ? 1 : 0},
                              {"cuts_explored", cuts_explored},
                              {"max_frontier", max_frontier},
                              {"truncated", truncated ? 1 : 0}});
  };

  if (job.algo == "oracle") {
    const auto cut = comp.first_wcp_cut();
    row.verdict = cut.has_value();
    if (cut) row.cut = *cut;
    row.report = flat_report(bench, rp, {{"detected", cut ? 1 : 0}});
    return row;
  }
  if (job.algo == "lattice") {
    const auto r = detect_lattice(comp, job.max_cuts, job.threads);
    lattice_row(r.detected, r.cut, r.cuts_explored, r.max_frontier,
                r.truncated);
    return row;
  }
  if (job.algo == "lattice-sliced") {
    const auto r = detect_lattice_sliced(comp, job.threads);
    lattice_row(r.detected, r.cut, r.cuts_explored, r.max_frontier,
                r.truncated);
    return row;
  }
  if (job.algo == "definitely" || job.algo == "definitely-sliced") {
    const auto r = job.algo == "definitely"
                       ? detect_definitely(comp, job.max_cuts, job.threads)
                       : detect_definitely_sliced(comp, job.max_cuts,
                                                  job.threads);
    row.verdict = r.definitely;
    row.cut = r.witness;
    row.cost = r.cuts_explored;
    row.report =
        flat_report(bench, rp,
                    {{"definitely", r.definitely ? 1 : 0},
                     {"cuts_explored", r.cuts_explored},
                     {"truncated", r.truncated ? 1 : 0},
                     {"witness_found", r.witness.empty() ? 0 : 1}});
    return row;
  }

  RunOptions opts;
  opts.seed = job.seed;
  opts.latency = sim::LatencyModel::uniform(1, 6);

  if (job.algo == "lattice-online") {
    const auto r = run_lattice_online(comp, opts, job.max_cuts);
    lattice_row(r.detected, r.cut, r.cuts_explored, r.max_frontier,
                r.truncated);
    return row;
  }

  DetectionResult r;
  if (job.algo == "token") {
    r = run_token_vc(comp, opts);
  } else if (job.algo == "multi") {
    MultiTokenOptions mt;
    mt.num_groups = job.groups;
    r = run_multi_token(comp, opts, mt);
  } else if (job.algo == "dd" || job.algo == "dd-par") {
    DdRunOptions dd;
    dd.parallel = (job.algo == "dd-par");
    r = run_direct_dep(comp, opts, dd);
  } else if (job.algo == "checker") {
    r = run_centralized(comp, opts);
  } else {
    WCP_REQUIRE(false, "unknown sweep algo '" + job.algo + "'");
  }
  row.verdict = r.detected;
  row.cut = r.cut;
  row.cost = r.monitor_metrics.total_work();
  row.report = run_report_string(bench, rp, r, std::nullopt, std::nullopt,
                                 /*include_wall_clock=*/false, /*indent=*/0);
  return row;
}

}  // namespace

std::vector<SweepRow> run_sweep(const Computation& comp,
                                const std::vector<SweepJob>& jobs,
                                std::size_t threads) {
  const auto procs = comp.predicate_processes();
  WCP_REQUIRE(!procs.empty(), "empty predicate");
  if (threads == 0) threads = common::ThreadPool::default_threads();
  if (jobs.empty()) return {};
  if (threads <= 1 || jobs.size() == 1) {
    std::vector<SweepRow> rows;
    rows.reserve(jobs.size());
    for (const SweepJob& job : jobs) rows.push_back(run_one(comp, job));
    return rows;
  }
  // Force the lazily built trace store into existence before the fan-out:
  // Computation materializes it on first use, which must not happen
  // concurrently.
  (void)comp.trace_store();
  common::ThreadPool pool(threads);
  return pool.parallel_map<SweepRow>(
      jobs.size(), [&](std::size_t i) { return run_one(comp, jobs[i]); },
      /*grain=*/1);
}

std::vector<SweepJob> cross_jobs(const std::vector<std::string>& algos,
                                 const std::vector<std::uint64_t>& seeds) {
  std::vector<SweepJob> jobs;
  jobs.reserve(algos.size() * seeds.size());
  for (const std::string& algo : algos)
    for (std::uint64_t seed : seeds) {
      SweepJob j;
      j.algo = algo;
      j.seed = seed;
      jobs.push_back(std::move(j));
    }
  return jobs;
}

}  // namespace wcp::detect
