#include "detect/multi_token.h"

#include <algorithm>
#include <utility>

#include "app/app_driver.h"
#include "app/snapshot.h"
#include "common/error.h"

namespace wcp::detect {

MultiTokenLeader::MultiTokenLeader(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "leader needs shared detection state");
  WCP_REQUIRE(cfg_.num_groups >= 1, "need at least one group");
  canonical_ = VcToken(n());
}

void MultiTokenLeader::on_start() {
  // Every slot starts red, so every group needs a token.
  cross_check_and_dispatch();
}

void MultiTokenLeader::on_packet(sim::Packet&& p) {
  WCP_CHECK_MSG(p.kind == MsgKind::kToken,
                "leader got unexpected " << to_string(p.kind));
  auto tok = std::any_cast<VcToken>(std::move(p.payload));
  net().bump_token_hops();
  merge(tok);
  --outstanding_;
  WCP_CHECK(outstanding_ >= 0);
  if (outstanding_ == 0) cross_check_and_dispatch();
}

void MultiTokenLeader::merge(const VcToken& tok) {
  // A group token only ever *advances* information: member slots may change
  // arbitrarily under the single-token rules; non-member slots may only be
  // marked red with a raised G (an elimination). Merge keeps, per slot, the
  // furthest-advanced view; at equal G a red mark wins because it records a
  // proof that the candidate state is eliminated.
  for (std::size_t s = 0; s < n(); ++s) {
    net().add_monitor_work(ProcessId(static_cast<int>(net().num_processes())),
                           1);
    if (tok.G[s] > canonical_.G[s]) {
      canonical_.G[s] = tok.G[s];
      canonical_.color[s] = tok.color[s];
      canonical_.V[s] = tok.V[s];
    } else if (tok.G[s] == canonical_.G[s] &&
               tok.color[s] == Color::kRed) {
      canonical_.color[s] = Color::kRed;
    }
  }
}

void MultiTokenLeader::cross_check_and_dispatch() {
  ++rounds_;
  const ProcessId coord(static_cast<int>(net().num_processes()));

  // Cross-group consistency check: a green slot t carries the vector clock
  // V[t] of its accepted candidate; V[t][s] >= G[s] proves
  // (s, G[s]) -> (t, G[t]), eliminating s (same test as Fig. 3's for-loop).
  // Evidence is frozen before applying eliminations; an eliminated witness
  // remains sound (its candidate was real and only precedes later ones).
  std::vector<std::size_t> greens;
  for (std::size_t t = 0; t < n(); ++t)
    if (canonical_.color[t] == Color::kGreen) greens.push_back(t);

  for (std::size_t t : greens) {
    const VectorClock& v = canonical_.V[t];
    for (std::size_t s = 0; s < n(); ++s) {
      if (s == t) continue;
      net().add_monitor_work(coord, 1);
      if (v[s] >= canonical_.G[s]) {
        canonical_.G[s] = v[s];
        canonical_.color[s] = Color::kRed;
      }
    }
  }

  const bool all_green =
      std::all_of(canonical_.color.begin(), canonical_.color.end(),
                  [](Color c) { return c == Color::kGreen; });
  if (all_green) {
    auto& shared = *cfg_.shared;
    shared.detected = true;
    shared.cut = canonical_.G;
    shared.detect_time = net().simulator().now();
    if (cfg_.halt_apps) {
      for (std::size_t p = 0; p < net().num_processes(); ++p)
        send(sim::NodeAddr::app(ProcessId(static_cast<int>(p))),
             MsgKind::kControl, app::Halt{}, /*bits=*/1);
    } else {
      net().simulator().stop();
    }
    return;
  }

  std::vector<bool> needs(static_cast<std::size_t>(cfg_.num_groups), false);
  for (std::size_t s = 0; s < n(); ++s)
    if (canonical_.color[s] == Color::kRed)
      needs[static_cast<std::size_t>(cfg_.group_of_slot[s])] = true;

  for (int g = 0; g < cfg_.num_groups; ++g)
    if (needs[static_cast<std::size_t>(g)]) dispatch(g);
  WCP_CHECK_MSG(outstanding_ > 0, "leader stuck: red slots but no dispatch");
}

void MultiTokenLeader::dispatch(int group) {
  int target = -1;
  for (std::size_t s = 0; s < n(); ++s) {
    if (cfg_.group_of_slot[s] == group &&
        canonical_.color[s] == Color::kRed) {
      target = static_cast<int>(s);
      break;
    }
  }
  WCP_CHECK(target >= 0);
  ++outstanding_;
  VcToken copy = canonical_;
  const std::int64_t bits = copy.bits(/*with_v=*/true);
  send(sim::NodeAddr::monitor(
           cfg_.slot_to_pid[static_cast<std::size_t>(target)]),
       MsgKind::kToken, std::move(copy), bits);
}

DetectionResult run_multi_token(const Computation& comp,
                                const RunOptions& opts,
                                const MultiTokenOptions& mt) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");
  const int g = std::clamp(mt.num_groups, 1, static_cast<int>(n));

  sim::NetworkConfig ncfg;
  ncfg.num_processes = comp.num_processes();
  ncfg.latency = opts.latency;
  ncfg.monitor_latency = opts.monitor_latency;
  ncfg.fifo_all = opts.fifo_all;
  ncfg.seed = opts.seed;
  sim::Network net(ncfg);

  auto shared = std::make_shared<SharedDetection>();
  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());
  std::vector<int> group_of_slot(n);
  for (std::size_t s = 0; s < n; ++s)
    group_of_slot[s] = static_cast<int>(s % static_cast<std::size_t>(g));

  for (std::size_t s = 0; s < n; ++s) {
    TokenVcMonitor::Config mc;
    mc.slot = static_cast<int>(s);
    mc.slot_to_pid = slot_to_pid;
    mc.starts_with_token = false;  // tokens come from the leader
    mc.shared = shared;
    mc.group_of_slot = group_of_slot;
    mc.leader = sim::NodeAddr::coordinator();
    net.add_node(sim::NodeAddr::monitor(slot_to_pid[s]),
                 std::make_unique<TokenVcMonitor>(std::move(mc)));
  }

  MultiTokenLeader::Config lc;
  lc.slot_to_pid = slot_to_pid;
  lc.group_of_slot = group_of_slot;
  lc.num_groups = g;
  lc.halt_apps = opts.halt_on_detect;
  lc.shared = shared;
  auto leader = std::make_unique<MultiTokenLeader>(std::move(lc));
  net.add_node(sim::NodeAddr::coordinator(), std::move(leader));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.compress_clocks = opts.compress_clocks;
  const auto drivers = app::install_app_drivers(net, comp, drv);

  net.start_and_run(opts.max_events);

  DetectionResult r;
  if (opts.halt_on_detect && shared->detected) {
    r.frozen_cut.reserve(drivers.size());
    for (const auto* d : drivers) r.frozen_cut.push_back(d->current_state());
  }
  r.detected = shared->detected;
  r.cut = shared->cut;
  r.detect_time = shared->detect_time;
  r.end_time = net.simulator().now();
  r.sim_events = net.simulator().events_processed();
  r.stats = net.run_stats();
  r.token_hops = net.monitor_metrics().token_hops();
  r.app_metrics = net.app_metrics();
  r.monitor_metrics = net.monitor_metrics();
  return r;
}

}  // namespace wcp::detect
