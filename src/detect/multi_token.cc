#include "detect/multi_token.h"

#include <algorithm>
#include <utility>

#include "app/app_driver.h"
#include "app/snapshot.h"
#include "common/error.h"

namespace wcp::detect {

MultiTokenLeader::MultiTokenLeader(Config cfg) : cfg_(std::move(cfg)) {
  WCP_REQUIRE(cfg_.shared != nullptr, "leader needs shared detection state");
  WCP_REQUIRE(cfg_.num_groups >= 1, "need at least one group");
  canonical_ = VcToken(n());
  const auto g = static_cast<std::size_t>(cfg_.num_groups);
  incarnation_.assign(g, 0);
  outstanding_group_.assign(g, 0);
  starved_.assign(g, 0);
  deadline_.assign(g, 0);
}

void MultiTokenLeader::on_start() {
  // Every slot starts red, so every group needs a token.
  cross_check_and_dispatch();
}

void MultiTokenLeader::on_packet(sim::Packet&& p) {
  if (p.kind == MsgKind::kControl) {
    const SimTime now = net().simulator().now();
    if (p.payload.type() == typeid(TokenHeartbeat)) {
      const auto hb = std::any_cast<TokenHeartbeat>(std::move(p.payload));
      const auto g = static_cast<std::size_t>(hb.group);
      if (hb.group >= 0 && g < outstanding_group_.size() &&
          outstanding_group_[g] && hb.incarnation == incarnation_[g])
        deadline_[g] = now + cfg_.recovery.lease;
      return;
    }
    if (p.payload.type() == typeid(TokenStarved)) {
      const auto st = std::any_cast<TokenStarved>(std::move(p.payload));
      const auto g = static_cast<std::size_t>(st.group);
      if (st.group >= 0 && g < outstanding_group_.size() &&
          st.incarnation == incarnation_[g]) {
        starved_[g] = 1;
        group_done(st.group);
      }
      return;
    }
    WCP_CHECK_MSG(false, "leader got unexpected control payload");
  }
  WCP_CHECK_MSG(p.kind == MsgKind::kToken,
                "leader got unexpected " << to_string(p.kind));
  auto tok = std::any_cast<VcToken>(std::move(p.payload));
  net().bump_token_hops();
  merge(tok);
  // A stale incarnation is a duplicate the guardian logic already replaced:
  // its information was merged above, but only the live token's return may
  // close out the group.
  const auto g = static_cast<std::size_t>(tok.group);
  WCP_CHECK(tok.group >= 0 && g < outstanding_group_.size());
  if (!outstanding_group_[g] || tok.incarnation != incarnation_[g]) {
    WCP_CHECK_MSG(cfg_.recovery.enabled, "stale token without recovery");
    return;
  }
  group_done(tok.group);
}

void MultiTokenLeader::group_done(int group) {
  const auto g = static_cast<std::size_t>(group);
  if (!outstanding_group_[g]) return;
  outstanding_group_[g] = 0;
  --outstanding_;
  WCP_CHECK(outstanding_ >= 0);
  if (outstanding_ == 0) cross_check_and_dispatch();
}

void MultiTokenLeader::merge(const VcToken& tok) {
  // A group token only ever *advances* information: member slots may change
  // arbitrarily under the single-token rules; non-member slots may only be
  // marked red with a raised G (an elimination). Merge keeps, per slot, the
  // furthest-advanced view; at equal G a red mark wins because it records a
  // proof that the candidate state is eliminated.
  net().add_monitor_work(ProcessId(static_cast<int>(net().num_processes())),
                         static_cast<std::int64_t>(n()));
  merge_token(canonical_, tok);
}

void MultiTokenLeader::cross_check_and_dispatch() {
  ++rounds_;
  const ProcessId coord(static_cast<int>(net().num_processes()));

  // Cross-group consistency check: a green slot t carries the vector clock
  // V[t] of its accepted candidate; V[t][s] >= G[s] proves
  // (s, G[s]) -> (t, G[t]), eliminating s (same test as Fig. 3's for-loop).
  // Evidence is frozen before applying eliminations; an eliminated witness
  // remains sound (its candidate was real and only precedes later ones).
  std::vector<std::size_t> greens;
  for (std::size_t t = 0; t < n(); ++t)
    if (canonical_.color[t] == Color::kGreen) greens.push_back(t);

  for (std::size_t t : greens) {
    const VectorClock& v = canonical_.V[t];
    for (std::size_t s = 0; s < n(); ++s) {
      if (s == t) continue;
      net().add_monitor_work(coord, 1);
      if (v[s] >= canonical_.G[s]) {
        canonical_.G[s] = v[s];
        canonical_.color[s] = Color::kRed;
      }
    }
  }

  const bool all_green =
      std::all_of(canonical_.color.begin(), canonical_.color.end(),
                  [](Color c) { return c == Color::kGreen; });
  if (all_green) {
    auto& shared = *cfg_.shared;
    shared.detected = true;
    shared.cut = canonical_.G;
    shared.detect_time = net().simulator().now();
    if (cfg_.halt_apps) {
      for (std::size_t p = 0; p < net().num_processes(); ++p)
        send(sim::NodeAddr::app(ProcessId(static_cast<int>(p))),
             MsgKind::kControl, app::Halt{}, /*bits=*/1);
    } else {
      net().simulator().stop();
    }
    return;
  }

  std::vector<bool> needs(static_cast<std::size_t>(cfg_.num_groups), false);
  bool starved_red = false;
  for (std::size_t s = 0; s < n(); ++s) {
    if (canonical_.color[s] != Color::kRed) continue;
    const auto g = static_cast<std::size_t>(cfg_.group_of_slot[s]);
    if (starved_[g]) {
      // The group's candidate stream dried up while a slot still needs to
      // advance: the predicate is undetectable; let the run drain.
      starved_red = true;
      continue;
    }
    needs[g] = true;
  }

  for (int g = 0; g < cfg_.num_groups; ++g)
    if (needs[static_cast<std::size_t>(g)]) dispatch(g, /*regenerated=*/false);
  WCP_CHECK_MSG(outstanding_ > 0 || starved_red,
                "leader stuck: red slots but no dispatch");
}

void MultiTokenLeader::dispatch(int group, bool regenerated) {
  const auto gi = static_cast<std::size_t>(group);
  int target = -1;
  for (std::size_t s = 0; s < n(); ++s) {
    if (cfg_.group_of_slot[s] != group || canonical_.color[s] != Color::kRed)
      continue;
    // Under recovery, skip slots whose monitor died for good — their
    // candidates can never advance, but another member's might.
    if (cfg_.recovery.enabled &&
        net().is_down_forever(sim::NodeAddr::monitor(cfg_.slot_to_pid[s])))
      continue;
    target = static_cast<int>(s);
    break;
  }
  if (target < 0) {
    // Every red slot of the group is permanently dead: undetectable.
    WCP_CHECK(cfg_.recovery.enabled);
    starved_[gi] = 1;
    if (regenerated) group_done(group);
    return;
  }
  if (!regenerated) {
    ++outstanding_;
    outstanding_group_[gi] = 1;
  }
  ++incarnation_[gi];
  deadline_[gi] = net().simulator().now() + cfg_.recovery.lease;
  if (cfg_.recovery.enabled) arm_watchdog();
  VcToken copy = canonical_;
  copy.group = group;
  copy.incarnation = incarnation_[gi];
  const std::int64_t bits = copy.bits(/*with_v=*/true);
  send(sim::NodeAddr::monitor(
           cfg_.slot_to_pid[static_cast<std::size_t>(target)]),
       MsgKind::kToken, std::move(copy), bits);
}

void MultiTokenLeader::arm_watchdog() {
  if (wd_armed_) return;
  wd_armed_ = true;
  after(cfg_.recovery.heartbeat, [this] {
    wd_armed_ = false;
    if (cfg_.shared->detected) return;
    const SimTime now = net().simulator().now();
    bool any = false;
    for (int g = 0; g < cfg_.num_groups; ++g) {
      const auto gi = static_cast<std::size_t>(g);
      if (!outstanding_group_[gi]) continue;
      if (now >= deadline_[gi]) {
        // Lease expired: the group's token (and maybe its holder) is gone.
        // Re-issue from the canonical merged state under a new incarnation.
        ++net().fault_counters().token_regenerations;
        dispatch(g, /*regenerated=*/true);
      }
      if (outstanding_group_[gi]) any = true;
    }
    if (any) arm_watchdog();
  });
}

DetectionResult run_multi_token(const Computation& comp,
                                const RunOptions& opts,
                                const MultiTokenOptions& mt) {
  const auto preds = comp.predicate_processes();
  const std::size_t n = preds.size();
  WCP_REQUIRE(n >= 1, "empty predicate");
  const int g = std::clamp(mt.num_groups, 1, static_cast<int>(n));

  sim::Network net(network_config(opts, comp.num_processes()));
  const TokenRecoveryOptions recovery = effective_recovery(opts);

  auto shared = std::make_shared<SharedDetection>();
  std::vector<ProcessId> slot_to_pid(preds.begin(), preds.end());
  std::vector<int> group_of_slot(n);
  for (std::size_t s = 0; s < n; ++s)
    group_of_slot[s] = static_cast<int>(s % static_cast<std::size_t>(g));

  for (std::size_t s = 0; s < n; ++s) {
    TokenVcMonitor::Config mc;
    mc.slot = static_cast<int>(s);
    mc.slot_to_pid = slot_to_pid;
    mc.starts_with_token = false;  // tokens come from the leader
    mc.shared = shared;
    mc.group_of_slot = group_of_slot;
    mc.leader = sim::NodeAddr::coordinator();
    mc.recovery = recovery;
    net.add_node(sim::NodeAddr::monitor(slot_to_pid[s]),
                 std::make_unique<TokenVcMonitor>(std::move(mc)));
  }

  MultiTokenLeader::Config lc;
  lc.slot_to_pid = slot_to_pid;
  lc.group_of_slot = group_of_slot;
  lc.num_groups = g;
  lc.halt_apps = opts.halt_on_detect;
  lc.shared = shared;
  lc.recovery = recovery;
  auto leader = std::make_unique<MultiTokenLeader>(std::move(lc));
  net.add_node(sim::NodeAddr::coordinator(), std::move(leader));

  app::AppDriverOptions drv;
  drv.mode = app::Instrumentation::kVectorClock;
  drv.step_delay = opts.step_delay;
  drv.compress_clocks = opts.compress_clocks;
  const auto drivers = app::install_app_drivers(net, comp, drv);

  net.start_and_run(opts.max_events);

  DetectionResult r;
  if (opts.halt_on_detect && shared->detected) {
    r.frozen_cut.reserve(drivers.size());
    for (const auto* d : drivers) r.frozen_cut.push_back(d->current_state());
  }
  finish_result(r, net, *shared);
  return r;
}

}  // namespace wcp::detect
