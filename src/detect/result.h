// Shared result/option types for all detection algorithms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/reliable.h"
#include "trace/trace_store_stats.h"

namespace wcp::sim {
struct NetworkConfig;
class Network;
}  // namespace wcp::sim

namespace wcp::detect {

/// Token-recovery tuning for the token-based detectors (token_vc and
/// multi_token): a token holder that blocks waiting for candidates
/// heartbeats its guardian (the monitor or leader that sent it the token);
/// a guardian whose lease expires without a heartbeat regenerates the token
/// from its checkpoint. Auto-enabled whenever the fault plan schedules
/// crashes; all timings are virtual-time units.
struct TokenRecoveryOptions {
  bool enabled = false;
  SimTime lease = 240;     ///< guardian watchdog deadline per heartbeat
  SimTime heartbeat = 60;  ///< holder heartbeat period while blocked
};

/// Options common to every online (simulator-hosted) detection run.
struct RunOptions {
  std::uint64_t seed = 1;            ///< drives latency + pacing only
  sim::LatencyModel latency{};       ///< per-message delay distribution
  /// Separate latency for monitor-layer traffic (token/poll/leader); unset
  /// means the application latency applies everywhere.
  std::optional<sim::LatencyModel> monitor_latency;
  bool fifo_all = false;             ///< FIFO on all channels (default: only app->monitor, the §3.1 requirement)
  /// Singhal-Kshemkalyani differential compression of piggybacked vector
  /// clocks (vector-clock algorithms only; ablation E11).
  bool compress_clocks = false;
  SimTime step_delay = 2;            ///< application think-time upper bound
  std::int64_t max_events = -1;      ///< simulator safety valve (<0: none)
  /// Distributed breakpoint (Miller-Choi [11]): on detection, freeze every
  /// application process with a Halt message instead of stopping the
  /// simulation; the run then drains and DetectionResult::frozen_cut holds
  /// the states the processes froze in.
  bool halt_on_detect = false;

  /// Fault injection (sim/fault.h). When the plan is enabled, every channel
  /// is automatically run over the reliable transport (see network_config),
  /// since the detectors assume loss-free channels and FIFO app->monitor
  /// links (§2, §3.1).
  sim::FaultPlan faults;
  /// Ack/retransmission transport tuning for faulty runs.
  sim::ReliableConfig reliable;
  /// Token-holder crash recovery; auto-enabled when `faults` schedules
  /// crashes (see effective_recovery).
  TokenRecoveryOptions recovery;
};

/// Outcome of one detection run.
struct DetectionResult {
  bool detected = false;
  /// Detected cut over the n predicate processes, in predicate-slot order
  /// (component s = state index on predicate_processes()[s]).
  std::vector<StateIndex> cut;
  /// For direct-dependence runs: the cut over all N processes.
  std::vector<StateIndex> full_cut;
  /// For halt_on_detect runs: the state each application process froze in
  /// (width N; componentwise at or after the detected cut).
  std::vector<StateIndex> frozen_cut;
  SimTime detect_time = 0;  ///< virtual time when detect was set
  SimTime end_time = 0;     ///< virtual time when the run ended
  std::int64_t token_hops = 0;
  std::int64_t sim_events = 0;
  /// Simulator/network execution statistics (all-zero for offline runs).
  RunStats stats;
  Metrics app_metrics;      ///< per application process
  Metrics monitor_metrics;  ///< per monitor process (+ one coordinator slot)
  /// Injected faults and transport/recovery reactions (all-zero on
  /// fault-free runs; deterministic per seed + fault plan otherwise).
  FaultCounters faults;
  /// Columnar trace-store footprint when the run read ground-truth clocks
  /// through the store (all-zero for online runs, which never materialize
  /// it). Deterministic per computation — independent of thread count.
  TraceStoreStats trace_store;

  /// One JSON object with the outcome, both metric layers, and the
  /// execution statistics. `include_wall_clock=false` drops the only
  /// nondeterministic field, making the output a pure function of
  /// (computation, seed, latency model).
  void write_json(json::Writer& w, bool include_wall_clock = true,
                  bool per_process = false) const;
};

std::ostream& operator<<(std::ostream& os, const DetectionResult& r);

/// Mutable state shared between the monitors of one run; the node that sets
/// `detected` stops the simulator.
struct SharedDetection {
  bool detected = false;
  std::vector<StateIndex> cut;
  SimTime detect_time = 0;
};

/// Builds the NetworkConfig every online runner uses from the common run
/// options. When the fault plan is enabled, all channels are switched onto
/// the reliable transport (the detectors' channel assumptions require it).
sim::NetworkConfig network_config(const RunOptions& opts,
                                  std::size_t num_processes);

/// Recovery options with the auto-enable rule applied: crashes in the fault
/// plan imply token recovery.
TokenRecoveryOptions effective_recovery(const RunOptions& opts);

/// Fills the network-derived fields of a result (timings, stats, metrics,
/// fault counters) after start_and_run, plus the shared detection outcome.
void finish_result(DetectionResult& r, sim::Network& net,
                   const SharedDetection& shared);

}  // namespace wcp::detect
