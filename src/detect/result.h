// Shared result/option types for all detection algorithms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "sim/latency.h"

namespace wcp::detect {

/// Options common to every online (simulator-hosted) detection run.
struct RunOptions {
  std::uint64_t seed = 1;            ///< drives latency + pacing only
  sim::LatencyModel latency{};       ///< per-message delay distribution
  /// Separate latency for monitor-layer traffic (token/poll/leader); unset
  /// means the application latency applies everywhere.
  std::optional<sim::LatencyModel> monitor_latency;
  bool fifo_all = false;             ///< FIFO on all channels (default: only app->monitor, the §3.1 requirement)
  /// Singhal-Kshemkalyani differential compression of piggybacked vector
  /// clocks (vector-clock algorithms only; ablation E11).
  bool compress_clocks = false;
  SimTime step_delay = 2;            ///< application think-time upper bound
  std::int64_t max_events = -1;      ///< simulator safety valve (<0: none)
  /// Distributed breakpoint (Miller-Choi [11]): on detection, freeze every
  /// application process with a Halt message instead of stopping the
  /// simulation; the run then drains and DetectionResult::frozen_cut holds
  /// the states the processes froze in.
  bool halt_on_detect = false;
};

/// Outcome of one detection run.
struct DetectionResult {
  bool detected = false;
  /// Detected cut over the n predicate processes, in predicate-slot order
  /// (component s = state index on predicate_processes()[s]).
  std::vector<StateIndex> cut;
  /// For direct-dependence runs: the cut over all N processes.
  std::vector<StateIndex> full_cut;
  /// For halt_on_detect runs: the state each application process froze in
  /// (width N; componentwise at or after the detected cut).
  std::vector<StateIndex> frozen_cut;
  SimTime detect_time = 0;  ///< virtual time when detect was set
  SimTime end_time = 0;     ///< virtual time when the run ended
  std::int64_t token_hops = 0;
  std::int64_t sim_events = 0;
  /// Simulator/network execution statistics (all-zero for offline runs).
  RunStats stats;
  Metrics app_metrics;      ///< per application process
  Metrics monitor_metrics;  ///< per monitor process (+ one coordinator slot)

  /// One JSON object with the outcome, both metric layers, and the
  /// execution statistics. `include_wall_clock=false` drops the only
  /// nondeterministic field, making the output a pure function of
  /// (computation, seed, latency model).
  void write_json(json::Writer& w, bool include_wall_clock = true,
                  bool per_process = false) const;
};

std::ostream& operator<<(std::ostream& os, const DetectionResult& r);

/// Mutable state shared between the monitors of one run; the node that sets
/// `detected` stops the simulator.
struct SharedDetection {
  bool detected = false;
  std::vector<StateIndex> cut;
  SimTime detect_time = 0;
};

}  // namespace wcp::detect
