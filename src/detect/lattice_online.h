// Online Cooper-Marzullo detection — the actual architecture of reference
// [3]: every predicate process streams a snapshot of EVERY local state
// (vector clock + predicate value) to one checker, which constructs the
// lattice of consistent global states incrementally as snapshots arrive
// and reports the first (minimal-level) cut satisfying the WCP.
//
// This is the general-predicate baseline made online; its cost — the
// number of lattice cuts materialized, O(m^n) in the worst case — is what
// the paper's WCP-specialized detectors avoid. The offline
// detect_lattice() explores the same lattice post-hoc; the two must agree
// (tests/lattice_online_test.cc).
//
// The level-ordered exploration itself lives in detect::LatticeOnlineCore
// (detect/stream_core.h) so the streaming service can run it over wire-fed
// streams with frontier GC; this node hosts the core on the simulator
// (never garbage-collecting — simulator replays are bounded) and forwards
// the work accounting into the coordinator metrics.
#pragma once

#include <memory>
#include <vector>

#include "app/snapshot.h"
#include "app/snapshot_stream.h"
#include "common/cut_storage.h"
#include "detect/result.h"
#include "detect/stream_core.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

class LatticeChecker final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
    std::shared_ptr<SharedDetection> shared;
    /// Stop (undetected) after materializing this many cuts (<0: never).
    std::int64_t max_cuts = -1;
  };

  explicit LatticeChecker(Config cfg);

  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] std::int64_t cuts_explored() const {
    return core_->cuts_explored();
  }
  [[nodiscard]] std::int64_t max_frontier() const {
    return core_->max_frontier();
  }
  [[nodiscard]] CutStorageStats storage() const { return core_->storage(); }

 private:
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::vector<std::vector<app::VcSnapshot>> states_;  // per slot, by index
  std::vector<int> slot_of_pid_;
  app::SnapshotStateStream stream_;
  std::unique_ptr<LatticeOnlineCore> core_;
};

struct LatticeOnlineResult {
  bool detected = false;
  bool truncated = false;
  std::vector<StateIndex> cut;
  std::int64_t cuts_explored = 0;
  std::int64_t max_frontier = 0;
  SimTime detect_time = 0;
  Metrics app_metrics;
  Metrics monitor_metrics;
  CutStorageStats storage;  ///< checker-side cut-storage footprint
};

/// Runs the online Cooper-Marzullo checker over a replay of `comp`.
LatticeOnlineResult run_lattice_online(const Computation& comp,
                                       const RunOptions& opts,
                                       std::int64_t max_cuts = -1);

}  // namespace wcp::detect
