// Online Cooper-Marzullo detection — the actual architecture of reference
// [3]: every predicate process streams a snapshot of EVERY local state
// (vector clock + predicate value) to one checker, which constructs the
// lattice of consistent global states incrementally as snapshots arrive
// and reports the first (minimal-level) cut satisfying the WCP.
//
// This is the general-predicate baseline made online; its cost — the
// number of lattice cuts materialized, O(m^n) in the worst case — is what
// the paper's WCP-specialized detectors avoid. The offline
// detect_lattice() explores the same lattice post-hoc; the two must agree
// (tests/lattice_online_test.cc).
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "app/snapshot.h"
#include "common/cut_storage.h"
#include "detect/result.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::detect {

class LatticeChecker final : public sim::Node {
 public:
  struct Config {
    std::vector<ProcessId> slot_to_pid;
    std::shared_ptr<SharedDetection> shared;
    /// Stop (undetected) after materializing this many cuts (<0: never).
    std::int64_t max_cuts = -1;
  };

  explicit LatticeChecker(Config cfg);

  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] std::int64_t cuts_explored() const { return cuts_explored_; }
  [[nodiscard]] std::int64_t max_frontier() const { return max_frontier_; }
  [[nodiscard]] CutStorageStats storage() const {
    CutStorageStats s;
    visited_arena_.add_stats(s);
    visited_table_.add_stats(s);
    return s;
  }

 private:
  void drain();
  /// All component snapshots of `cut` available?
  [[nodiscard]] bool available(const std::vector<StateIndex>& cut) const;
  [[nodiscard]] const app::VcSnapshot& snap(std::size_t slot,
                                            StateIndex k) const {
    return states_[slot][static_cast<std::size_t>(k - 1)];
  }
  [[nodiscard]] std::size_t n() const { return cfg_.slot_to_pid.size(); }

  Config cfg_;
  std::vector<std::vector<app::VcSnapshot>> states_;  // per slot, by index
  std::vector<int> slot_of_pid_;

  // Level-ordered exploration (level = sum of components): parking for
  // not-yet-arrived states can perturb plain BFS order, so a min-heap on
  // the level restores the guarantee that the first satisfying cut popped
  // is the pointwise-minimal one (the unique minimum of the WCP's
  // meet-closed satisfying set).
  // Every cut the checker ever generates is interned once into the visited
  // arena (common/cut_storage.h); the heap entries and the parking lists
  // hold 32-bit handles into it instead of full state vectors.
  struct Entry {
    StateIndex level;
    std::int64_t seq;
    CutHandle cut;
    bool operator>(const Entry& o) const {
      return level != o.level ? level > o.level : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready_;
  std::int64_t seq_ = 0;
  void enqueue(CutHandle h);
  std::map<std::pair<std::size_t, StateIndex>, std::vector<CutHandle>>
      parked_;
  CutArena visited_arena_;
  CutTable visited_table_;
  std::vector<StateIndex> scratch_;  // popped cut, widened; reused
  std::int64_t cuts_explored_ = 0;
  std::int64_t max_frontier_ = 0;
  bool gave_up_ = false;
};

struct LatticeOnlineResult {
  bool detected = false;
  bool truncated = false;
  std::vector<StateIndex> cut;
  std::int64_t cuts_explored = 0;
  std::int64_t max_frontier = 0;
  SimTime detect_time = 0;
  Metrics app_metrics;
  Metrics monitor_metrics;
  CutStorageStats storage;  ///< checker-side cut-storage footprint
};

/// Runs the online Cooper-Marzullo checker over a replay of `comp`.
LatticeOnlineResult run_lattice_online(const Computation& comp,
                                       const RunOptions& opts,
                                       std::int64_t max_cuts = -1);

}  // namespace wcp::detect
