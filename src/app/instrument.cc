#include "app/instrument.h"

#include "common/error.h"

namespace wcp::app {

Instrument::Instrument(sim::Network& net, ProcessId self, Config cfg)
    : net_(net), self_(self), cfg_(std::move(cfg)) {
  if (cfg_.vector_clock_mode) {
    WCP_REQUIRE(cfg_.predicate_width >= 1, "predicate width must be >= 1");
    vclock_ = in_predicate()
                  ? VectorClock::initial(cfg_.predicate_width,
                                         ProcessId(cfg_.pred_slot))
                  : VectorClock(cfg_.predicate_width);
  }
}

ClockHeader Instrument::on_send(ProcessId to) {
  ClockHeader hdr;
  if (cfg_.vector_clock_mode) {
    hdr.vclock = vclock_;
    if (in_predicate()) vclock_.tick(ProcessId(cfg_.pred_slot));
  } else {
    hdr.clock = clock_;
    ++clock_;
  }
  if (cfg_.recorder) hdr.rec_id = cfg_.recorder->record_send(self_, to);
  entered_new_state();
  return hdr;
}

void Instrument::on_receive(ProcessId from, const ClockHeader& hdr) {
  if (cfg_.vector_clock_mode) {
    vclock_.merge(hdr.vclock);
    if (in_predicate()) vclock_.tick(ProcessId(cfg_.pred_slot));
  } else {
    deps_.add(from, hdr.clock);
    ++clock_;
  }
  if (cfg_.recorder) {
    WCP_REQUIRE(hdr.rec_id >= 0,
                "received header carries no recorder id (mixed recording?)");
    cfg_.recorder->record_receive(hdr.rec_id);
  }
  entered_new_state();
}

void Instrument::entered_new_state() {
  snapshot_sent_for_state_ = false;  // Fig. 2: firstflag := true
  maybe_snapshot();
}

void Instrument::set_predicate(bool holds) {
  pred_value_ = holds;
  if (cfg_.recorder && in_predicate() && holds)
    cfg_.recorder->record_pred(self_, true);
  maybe_snapshot();
}

void Instrument::maybe_snapshot() {
  // Direct-dependence relays run with the identically-true predicate.
  const bool effective_pred =
      (!cfg_.vector_clock_mode && !in_predicate()) || pred_value_;
  if (!effective_pred || snapshot_sent_for_state_) return;
  if (cfg_.vector_clock_mode && !in_predicate()) return;  // VC relays: none
  snapshot_sent_for_state_ = true;

  if (cfg_.recorder && in_predicate())
    cfg_.recorder->record_pred(self_, true);

  if (cfg_.vector_clock_mode) {
    VcSnapshot snap;
    snap.vclock = vclock_;
    const std::int64_t bits = snap.bits();
    net_.send(sim::NodeAddr::app(self_), cfg_.monitor, MsgKind::kSnapshot,
              std::move(snap), bits);
  } else {
    DdSnapshot snap{clock_, deps_};
    deps_.clear();
    const std::int64_t bits = snap.bits();
    net_.send(sim::NodeAddr::app(self_), cfg_.monitor, MsgKind::kSnapshot,
              std::move(snap), bits);
  }
}

}  // namespace wcp::app
