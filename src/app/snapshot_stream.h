// StateStream view over the per-slot VcSnapshot vectors the sim-hosted
// checker nodes keep. Simulator runs never garbage-collect (base stays 1),
// so positions are plain vector indices + 1.
#pragma once

#include <vector>

#include "app/snapshot.h"
#include "app/state_stream.h"

namespace wcp::app {

class SnapshotStateStream final : public StateStream {
 public:
  /// `eos` may be null (streams never end, e.g. the lattice checker node,
  /// which learns termination from the simulator stopping instead).
  explicit SnapshotStateStream(
      const std::vector<std::vector<VcSnapshot>>& states,
      const std::vector<bool>* eos = nullptr)
      : states_(states), eos_(eos) {}

  [[nodiscard]] std::size_t slots() const override { return states_.size(); }
  [[nodiscard]] StateIndex last(std::size_t s) const override {
    return static_cast<StateIndex>(states_[s].size());
  }
  [[nodiscard]] StateIndex base(std::size_t) const override { return 1; }
  [[nodiscard]] bool eos(std::size_t s) const override {
    return eos_ != nullptr && (*eos_)[s];
  }
  [[nodiscard]] StateIndex clock(std::size_t s, StateIndex pos,
                                 std::size_t t) const override {
    return states_[s][static_cast<std::size_t>(pos - 1)].vclock[t];
  }
  [[nodiscard]] bool pred(std::size_t s, StateIndex pos) const override {
    return states_[s][static_cast<std::size_t>(pos - 1)].pred;
  }

 private:
  const std::vector<std::vector<VcSnapshot>>& states_;
  const std::vector<bool>* eos_;
};

}  // namespace wcp::app
