// Live instrumentation for user-written application processes.
//
// The replay driver (app_driver.h) re-executes a recorded Computation; this
// header is the adoption path for *live* programs: a user's sim::Node owns
// an Instrument, stamps outgoing messages with ClockHeader, feeds incoming
// headers back, and reports its local-predicate value. The Instrument
// maintains the Fig. 2 vector clock (or the §4.1 scalar clock and
// dependence list), applies the firstflag snapshot rule, and sends local
// snapshots to the process's monitor — so any detector harness (token-VC,
// multi-token, direct-dependence, checker) works on live runs unchanged.
//
// An optional shared Recorder reconstructs the run's Computation as it
// happens, which gives live runs the same offline oracle the replay tests
// use (and free trace dumps via trace_io).
#pragma once

#include <cstdint>
#include <memory>

#include "app/snapshot.h"
#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::app {

/// Piggybacked on every application message of an instrumented process.
struct ClockHeader {
  VectorClock vclock;      // vector-clock mode (width n)
  LamportTime clock = 0;   // direct-dependence mode
  std::int64_t rec_id = -1;  // recorder message id (bookkeeping only)

  [[nodiscard]] std::int64_t bits() const {
    return vclock.empty() ? 64 : vclock.bits();
  }
};

/// Reconstructs the Computation of a live run. One Recorder is shared by
/// all Instruments of a run (the simulator is single-threaded).
class Recorder {
 public:
  explicit Recorder(std::size_t num_processes) : b_(num_processes) {}

  void set_predicate_processes(std::vector<ProcessId> procs) {
    b_.set_predicate_processes(std::move(procs));
  }

  [[nodiscard]] std::int64_t record_send(ProcessId from, ProcessId to) {
    return b_.send(from, to);
  }
  void record_receive(std::int64_t rec_id) { b_.receive(rec_id); }
  void record_pred(ProcessId p, bool value) { b_.mark_pred(p, value); }

  /// Finalize; the recorder is single-use.
  Computation build() { return b_.build(); }

 private:
  ComputationBuilder b_;
};

class Instrument {
 public:
  struct Config {
    /// Vector-clock mode when true (n-wide clocks; only predicate
    /// processes snapshot); direct-dependence mode when false (scalar
    /// clock; every process snapshots, relays with l ≡ true).
    bool vector_clock_mode = true;
    std::size_t predicate_width = 0;  ///< n (vector-clock mode)
    int pred_slot = -1;               ///< this process's slot, -1 for relays
    sim::NodeAddr monitor;            ///< snapshot destination
    std::shared_ptr<Recorder> recorder;  ///< optional
  };

  /// `net`/`self` identify the owning application node.
  Instrument(sim::Network& net, ProcessId self, Config cfg);

  /// Call immediately before sending an application message to `to`;
  /// embed the returned header in the message payload.
  ClockHeader on_send(ProcessId to);

  /// Call when an application message (from `from`, carrying `hdr`) is
  /// consumed.
  void on_receive(ProcessId from, const ClockHeader& hdr);

  /// Report the local predicate's current value. The Instrument applies the
  /// Fig. 2 firstflag rule: a snapshot is emitted when the predicate is
  /// true and none has been sent for the current state; state changes
  /// (send/receive) re-arm it automatically while the value stays true.
  void set_predicate(bool holds);

  [[nodiscard]] const VectorClock& vclock() const { return vclock_; }
  [[nodiscard]] LamportTime clock() const { return clock_; }

 private:
  void entered_new_state();
  void maybe_snapshot();
  [[nodiscard]] bool in_predicate() const { return cfg_.pred_slot >= 0; }

  sim::Network& net_;
  ProcessId self_;
  Config cfg_;
  VectorClock vclock_;
  LamportTime clock_ = 1;
  DependenceList deps_;
  bool pred_value_ = false;
  bool snapshot_sent_for_state_ = false;
};

}  // namespace wcp::app
