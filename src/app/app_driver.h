// Application-process driver: replays one process's timeline of a
// Computation on the simulator, carrying the instrumentation of the paper's
// application-process algorithms (Fig. 2 for the vector-clock detectors,
// §4.1 for the direct-dependence detectors).
//
// Replay preserves the logical computation exactly — each receive waits for
// its scripted message — so the cut detected online can be compared against
// the offline oracle regardless of simulated network latency or reordering.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "sim/network.h"
#include "trace/computation.h"

namespace wcp::app {

/// Which snapshot instrumentation the run uses.
enum class Instrumentation : std::uint8_t {
  kVectorClock,       // Fig. 2: n-wide vector clocks, snapshots to monitor
  kDirectDependence,  // §4.1: scalar clock + dependence lists
};

/// Payload of an application-to-application message.
struct AppMessage {
  MessageId id = -1;          // script identity (replay bookkeeping only)
  VectorClock vclock;         // kVectorClock: sender's clock (n components)
  LamportTime clock = 0;      // kDirectDependence: sender's scalar clock

  // Singhal-Kshemkalyani differential compression (ablation, see E11):
  // instead of the full clock, carry only the components that changed since
  // the previous message on this channel, plus a per-channel sequence
  // number used to validate the FIFO assumption the technique requires.
  bool compressed = false;
  std::int64_t chan_seq = 0;
  std::vector<std::pair<int, StateIndex>> diff;

  /// On-the-wire control information added by the instrumentation. The
  /// paper counts the piggybacked clock: n*64 bits (VC) or 64 (DD); a
  /// compressed clock is 64 (seq) + 96 per changed component.
  [[nodiscard]] std::int64_t bits() const {
    if (compressed)
      return 64 + static_cast<std::int64_t>(diff.size()) * 96;
    return vclock.empty() ? 64 : vclock.bits();
  }
};

struct AppDriverOptions {
  Instrumentation mode = Instrumentation::kVectorClock;
  /// Mean think time between consecutive local events of this process.
  SimTime step_delay = 1;
  /// If true (DD runs), processes outside the predicate set snapshot every
  /// state (their local predicate is identically true, §4's requirement
  /// that all N processes participate).
  bool relay_snapshots = false;
  /// Differentially compress piggybacked vector clocks (Singhal-
  /// Kshemkalyani). Requires the computation's per-channel receive order to
  /// match the send order; validated at runtime via chan_seq.
  bool compress_clocks = false;
  /// Attach per-peer send/receive counters to every snapshot (GCP runs,
  /// reference [6]): 2N extra words per snapshot.
  bool include_channel_counts = false;
  /// Emit local snapshots / end-of-stream to the monitor. Disabled for
  /// runs without monitor processes (e.g. Chandy-Lamport rounds).
  bool emit_snapshots = true;
  /// Snapshot EVERY state of predicate processes (with the predicate value
  /// flagged), not just satisfying ones — the Cooper-Marzullo online
  /// lattice checker consumes full state streams.
  bool snapshot_all_states = false;
  /// Address that receives this process's snapshots (its monitor, or the
  /// centralized checker).
  sim::NodeAddr monitor;
};

class AppDriver final : public sim::Node {
 public:
  AppDriver(const Computation& comp, ProcessId self, AppDriverOptions opts);

  void on_start() override;
  void on_packet(sim::Packet&& p) override;

  [[nodiscard]] bool done() const { return next_event_ >= script_.size(); }
  /// Frozen by a Halt control message (distributed breakpoint).
  [[nodiscard]] bool halted() const { return halted_; }
  /// The process's current local state index.
  [[nodiscard]] StateIndex current_state() const { return state_; }

 private:
  void step();
  void schedule_step();
  void enter_new_state();
  void emit_snapshot_if_needed();
  [[nodiscard]] bool in_predicate() const { return pred_slot_ >= 0; }

  const Computation& comp_;
  AppDriverOptions opts_;
  EventView script_;
  std::size_t next_event_ = 0;
  StateIndex state_ = 1;

  // Fig. 2 state (vector-clock mode). Width n; processes outside the
  // predicate set carry the clock but own no component.
  VectorClock vclock_;
  int pred_slot_ = -1;

  // §4.1 state (direct-dependence mode).
  LamportTime clock_ = 1;
  DependenceList deps_;

  // Messages that arrived before the script is ready to consume them.
  std::unordered_map<MessageId, AppMessage> pending_;
  bool step_scheduled_ = false;
  bool eos_sent_ = false;
  bool halted_ = false;

  // Clock-compression channel state (per peer process index).
  std::vector<VectorClock> last_sent_;
  std::vector<VectorClock> last_seen_;
  std::vector<std::int64_t> send_seq_;
  std::vector<std::int64_t> recv_seq_;

  // Channel counters (per peer process index; GCP runs).
  std::vector<std::int64_t> sent_to_;
  std::vector<std::int64_t> recv_from_;

  // ---- Chandy-Lamport participation (detect/chandy_lamport.h) ----------
  // Activated by ClInitiate/ClMarker control messages; always compiled in.
  void cl_on_control(ProcessId from, const sim::Packet& p);
  void cl_record(int round);
  void cl_marker_processed(ProcessId from, int round);
  void cl_after_consume(ProcessId from);
  void cl_check_complete();

  std::vector<std::int64_t> arrived_from_;   // app msgs arrived, per peer
  std::vector<std::int64_t> consumed_from_;  // app msgs consumed, per peer
  struct ClState {
    int round = 0;
    bool recorded = false;
    StateIndex state = 0;
    bool pred = false;
    int missing = 0;
    std::vector<std::int64_t> channel_counts;   // per peer
    std::vector<bool> marker_done;              // per peer
    std::vector<std::int64_t> deferred_barrier; // per peer; -1 = none
    std::vector<int> deferred_round;            // per peer; 0 = none
  };
  ClState cl_;
};

/// Installs one AppDriver per process of `comp` into `net`. `base` supplies
/// mode/pacing/compression; the per-process monitor address is chosen by
/// `monitor_of` (defaults to NodeAddr::monitor(p)). The returned pointers
/// stay valid while `net` lives (used to read frozen states after a
/// halt-on-detect run).
std::vector<AppDriver*> install_app_drivers(
    sim::Network& net, const Computation& comp, AppDriverOptions base,
    const std::function<sim::NodeAddr(ProcessId)>& monitor_of = {});

}  // namespace wcp::app
