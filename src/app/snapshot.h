// Local snapshot formats sent from application processes to their monitors.
#pragma once

#include <cstdint>
#include <vector>

#include "clock/dependence.h"
#include "clock/vector_clock.h"
#include "common/types.h"

namespace wcp::app {

/// §3.1 snapshot: the n-component vector clock of a state in which the
/// local predicate holds.
///
/// For GCP runs (reference [6]; AppDriverOptions::include_channel_counts)
/// the snapshot additionally carries this process's per-peer message
/// counters at the state: sent_to[q] = messages sent to P_q before this
/// state, recv_from[q] = messages from P_q received at this state. The
/// centralized GCP checker evaluates channel predicates from these.
struct VcSnapshot {
  VectorClock vclock;
  std::vector<std::int64_t> sent_to;    // empty unless channel counts on
  std::vector<std::int64_t> recv_from;  // empty unless channel counts on
  /// Local-predicate value of the state. Always true for the WCP detectors
  /// (they only snapshot satisfying states); meaningful in all-states mode
  /// (the online Cooper-Marzullo checker).
  bool pred = true;

  [[nodiscard]] std::int64_t bits() const {
    return vclock.bits() + 1 +
           static_cast<std::int64_t>(sent_to.size() + recv_from.size()) * 64;
  }
  /// Approximate in-memory size, used for the §3.4 buffer-space claim.
  [[nodiscard]] std::int64_t bytes() const { return bits() / 8; }
};

/// §4.1 snapshot: the scalar logical clock plus the direct dependences
/// recorded since the previous snapshot.
struct DdSnapshot {
  LamportTime clock = 0;
  DependenceList deps;

  [[nodiscard]] std::int64_t bits() const { return 64 + deps.bits(); }
  [[nodiscard]] std::int64_t bytes() const { return bits() / 8; }
};

/// Sent by an application process when its (finite, replayed) script is
/// exhausted. Extension over the paper (see DESIGN.md §2.4): lets online
/// detectors terminate with "not detected" instead of blocking forever.
struct EndOfStream {};

/// Distributed-breakpoint request (the Miller-Choi [11] use case): freezes
/// an application process in its current state. Sent by detection monitors
/// when RunOptions::halt_on_detect is set.
struct Halt {};

// ---- Chandy-Lamport snapshot protocol payloads (reference [2]; see
// detect/chandy_lamport.h for the algorithm) ------------------------------

/// Marker flooded on every channel when a process records its state.
struct ClMarker {
  int round = 0;
};

/// Coordinator -> initiating process: start a snapshot round.
struct ClInitiate {
  int round = 0;
};

/// Process -> coordinator: one process's slice of the global snapshot.
struct ClReport {
  int round = 0;
  ProcessId pid;
  StateIndex state = 0;  ///< recorded local state
  bool pred = false;     ///< local predicate value in that state
  /// channel_counts[q] = messages from P_q recorded in the channel q->pid.
  std::vector<std::int64_t> channel_counts;
};

}  // namespace wcp::app
