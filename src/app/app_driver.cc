#include "app/app_driver.h"

#include <utility>

#include "app/snapshot.h"
#include "common/error.h"

namespace wcp::app {

AppDriver::AppDriver(const Computation& comp, ProcessId self,
                     AppDriverOptions opts)
    : comp_(comp), opts_(opts), script_(comp.events(self)) {
  pred_slot_ = comp.predicate_slot(self);
  const std::size_t n = comp.predicate_processes().size();
  if (opts_.mode == Instrumentation::kVectorClock) {
    vclock_ = in_predicate()
                  ? VectorClock::initial(n, ProcessId(pred_slot_))
                  : VectorClock(n);
    if (opts_.compress_clocks) {
      last_sent_.assign(comp.num_processes(), VectorClock(n));
      last_seen_.assign(comp.num_processes(), VectorClock(n));
      send_seq_.assign(comp.num_processes(), 0);
      recv_seq_.assign(comp.num_processes(), 0);
    }
  }
  if (opts_.include_channel_counts) {
    sent_to_.assign(comp.num_processes(), 0);
    recv_from_.assign(comp.num_processes(), 0);
  }
  arrived_from_.assign(comp.num_processes(), 0);
  consumed_from_.assign(comp.num_processes(), 0);
}

void AppDriver::on_start() {
  emit_snapshot_if_needed();
  schedule_step();
}

void AppDriver::schedule_step() {
  if (step_scheduled_) return;
  step_scheduled_ = true;
  const SimTime delay =
      opts_.step_delay <= 1 ? 1 : net().rng().uniform_int(1, opts_.step_delay);
  after(delay, [this] {
    step_scheduled_ = false;
    step();
  });
}

void AppDriver::enter_new_state() {
  ++state_;
  if (opts_.mode == Instrumentation::kDirectDependence) {
    ++clock_;
    WCP_CHECK(clock_ == state_);  // §4.1: the counter numbers local states
  }
  emit_snapshot_if_needed();
}

void AppDriver::emit_snapshot_if_needed() {
  if (!opts_.emit_snapshots) return;
  const bool pred_holds = in_predicate() ? comp_.local_pred(pid(), state_)
                                         : opts_.relay_snapshots;
  if (!pred_holds && !(opts_.snapshot_all_states && in_predicate())) return;
  if (opts_.mode == Instrumentation::kVectorClock) {
    if (!in_predicate()) return;  // relays carry clocks but never snapshot
    VcSnapshot snap;
    snap.pred = pred_holds;
    snap.vclock = vclock_;
    if (opts_.include_channel_counts) {
      snap.sent_to = sent_to_;
      snap.recv_from = recv_from_;
    }
    const std::int64_t bits = snap.bits();
    send(opts_.monitor, MsgKind::kSnapshot, std::move(snap), bits);
  } else {
    DdSnapshot snap{clock_, deps_};
    deps_.clear();
    const std::int64_t bits = snap.bits();
    send(opts_.monitor, MsgKind::kSnapshot, std::move(snap), bits);
  }
}

void AppDriver::step() {
  if (halted_) return;  // frozen at a distributed breakpoint
  if (done()) {
    const bool emits_snapshots =
        opts_.emit_snapshots &&
        (opts_.mode == Instrumentation::kDirectDependence
             ? (in_predicate() || opts_.relay_snapshots)
             : in_predicate());
    if (!eos_sent_ && emits_snapshots) {
      eos_sent_ = true;
      send(opts_.monitor, MsgKind::kControl, EndOfStream{}, 1);
    }
    return;
  }

  const Event& ev = script_[next_event_];
  if (ev.kind == EventKind::kSend) {
    const MessageRecord& mr = comp_.message(ev.msg);
    AppMessage msg;
    msg.id = ev.msg;
    if (opts_.mode == Instrumentation::kVectorClock) {
      if (opts_.compress_clocks) {
        msg.compressed = true;
        auto& last = last_sent_[mr.to.idx()];
        for (std::size_t j = 0; j < vclock_.width(); ++j)
          if (vclock_[j] != last[j])
            msg.diff.emplace_back(static_cast<int>(j), vclock_[j]);
        last = vclock_;
        msg.chan_seq = ++send_seq_[mr.to.idx()];
      } else {
        msg.vclock = vclock_;
      }
    } else {
      msg.clock = clock_;
    }
    const std::int64_t bits = msg.bits();
    if (opts_.include_channel_counts) ++sent_to_[mr.to.idx()];
    send(sim::NodeAddr::app(mr.to), MsgKind::kApplication, std::move(msg),
         bits);
    if (opts_.mode == Instrumentation::kVectorClock && in_predicate())
      vclock_.tick(ProcessId(pred_slot_));
    ++next_event_;
    enter_new_state();
    schedule_step();
    return;
  }

  // Receive: wait until the scripted message has arrived.
  auto it = pending_.find(ev.msg);
  if (it == pending_.end()) return;  // on_packet will resume us
  AppMessage msg = std::move(it->second);
  pending_.erase(it);

  const ProcessId msg_src = comp_.message(ev.msg).from;
  if (opts_.include_channel_counts) ++recv_from_[msg_src.idx()];
  if (opts_.mode == Instrumentation::kVectorClock) {
    if (msg.compressed) {
      const ProcessId src = comp_.message(ev.msg).from;
      // The differential technique is only sound when the channel delivers
      // (at the script level) in send order.
      WCP_CHECK_MSG(msg.chan_seq == ++recv_seq_[src.idx()],
                    "clock compression requires per-channel FIFO order");
      auto& seen = last_seen_[src.idx()];
      for (const auto& [j, v] : msg.diff)
        seen.set(ProcessId(j), v);
      vclock_.merge(seen);
    } else {
      vclock_.merge(msg.vclock);
    }
    if (in_predicate()) vclock_.tick(ProcessId(pred_slot_));
  } else {
    deps_.add(comp_.message(ev.msg).from, msg.clock);
  }
  ++next_event_;
  enter_new_state();
  cl_after_consume(msg_src);
  schedule_step();
}

void AppDriver::on_packet(sim::Packet&& p) {
  if (p.kind == MsgKind::kControl) {
    cl_on_control(p.from.pid, p);
    return;
  }
  WCP_CHECK_MSG(p.kind == MsgKind::kApplication,
                "application process got unexpected " << to_string(p.kind));
  auto msg = std::any_cast<AppMessage>(std::move(p.payload));
  ++arrived_from_[comp_.message(msg.id).from.idx()];
  pending_.emplace(msg.id, std::move(msg));
  // If the script is blocked on this receive, resume.
  if (!step_scheduled_) schedule_step();
}

// ---------------------------------------------------------------------------
// Chandy-Lamport participation (reference [2]; detect/chandy_lamport.h).

void AppDriver::cl_on_control(ProcessId from, const sim::Packet& p) {
  if (std::any_cast<Halt>(&p.payload) != nullptr) {
    halted_ = true;  // freeze in the current state (Miller-Choi [11])
    return;
  }
  if (const auto* init = std::any_cast<ClInitiate>(&p.payload)) {
    cl_record(init->round);
    cl_check_complete();  // N == 1 edge case
    return;
  }
  const auto marker = std::any_cast<ClMarker>(p.payload);
  // Markers are ordered relative to *consumed* application messages: defer
  // this marker until every message from `from` that arrived before it has
  // been consumed by the script.
  if (consumed_from_[from.idx()] >= arrived_from_[from.idx()]) {
    cl_marker_processed(from, marker.round);
  } else {
    WCP_CHECK_MSG(cl_.deferred_round.empty() ||
                      cl_.deferred_round[from.idx()] == 0,
                  "overlapping snapshot rounds");
    if (cl_.deferred_round.empty()) {
      cl_.deferred_round.assign(comp_.num_processes(), 0);
      cl_.deferred_barrier.assign(comp_.num_processes(), -1);
    }
    cl_.deferred_round[from.idx()] = marker.round;
    cl_.deferred_barrier[from.idx()] = arrived_from_[from.idx()];
  }
}

void AppDriver::cl_record(int round) {
  if (cl_.recorded && cl_.round == round) return;
  WCP_CHECK_MSG(!cl_.recorded, "overlapping snapshot rounds");
  const std::size_t N = comp_.num_processes();
  cl_.round = round;
  cl_.recorded = true;
  cl_.state = state_;
  // Relays report the identically-true predicate, matching §4's convention.
  cl_.pred = in_predicate() ? comp_.local_pred(pid(), state_) : true;
  cl_.missing = static_cast<int>(N) - 1;
  cl_.channel_counts.assign(N, 0);
  cl_.marker_done.assign(N, false);
  for (std::size_t q = 0; q < N; ++q) {
    if (q == pid().idx()) continue;
    send(sim::NodeAddr::app(ProcessId(static_cast<int>(q))), MsgKind::kControl,
         ClMarker{round}, /*bits=*/64);
  }
}

void AppDriver::cl_marker_processed(ProcessId from, int round) {
  if (!cl_.recorded) cl_record(round);
  WCP_CHECK(cl_.round == round && !cl_.marker_done[from.idx()]);
  cl_.marker_done[from.idx()] = true;
  --cl_.missing;
  cl_check_complete();
}

void AppDriver::cl_after_consume(ProcessId from) {
  ++consumed_from_[from.idx()];
  if (cl_.recorded && !cl_.marker_done[from.idx()])
    ++cl_.channel_counts[from.idx()];
  if (!cl_.deferred_round.empty() && cl_.deferred_round[from.idx()] != 0 &&
      consumed_from_[from.idx()] >= cl_.deferred_barrier[from.idx()]) {
    const int round = cl_.deferred_round[from.idx()];
    cl_.deferred_round[from.idx()] = 0;
    cl_.deferred_barrier[from.idx()] = -1;
    cl_marker_processed(from, round);
  }
}

void AppDriver::cl_check_complete() {
  if (!cl_.recorded || cl_.missing > 0) return;
  ClReport report;
  report.round = cl_.round;
  report.pid = pid();
  report.state = cl_.state;
  report.pred = cl_.pred;
  report.channel_counts = cl_.channel_counts;
  const std::int64_t bits =
      64 * (2 + static_cast<std::int64_t>(report.channel_counts.size()));
  send(sim::NodeAddr::coordinator(), MsgKind::kControl, std::move(report),
       bits);
  cl_.recorded = false;  // ready for the next round
}

std::vector<AppDriver*> install_app_drivers(
    sim::Network& net, const Computation& comp, AppDriverOptions base,
    const std::function<sim::NodeAddr(ProcessId)>& monitor_of) {
  std::vector<AppDriver*> drivers;
  drivers.reserve(comp.num_processes());
  for (std::size_t p = 0; p < comp.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    AppDriverOptions opts = base;
    opts.monitor = monitor_of ? monitor_of(pid) : sim::NodeAddr::monitor(pid);
    auto driver = std::make_unique<AppDriver>(comp, pid, opts);
    drivers.push_back(driver.get());
    net.add_node(sim::NodeAddr::app(pid), std::move(driver));
  }
  return drivers;
}

}  // namespace wcp::app
