// Incremental-checker substrate: the interface between a stream of local
// snapshots and the detection state machines that consume it.
//
// Every online detector in this repo — token, centralized, the online
// Cooper-Marzullo lattice checker, the online slicer — is at heart a state
// machine fed one (vector clock, predicate) snapshot at a time. Historically
// each machine lived inside a sim::Node and owned its snapshot buffers; the
// streaming detection service (src/serve) needs the same machines fed from a
// wire protocol, over a SHARED per-connection snapshot buffer, with state
// below a garbage-collection frontier retired. StateStream/StreamCore are
// that extraction seam:
//
//   - StateStream: read-only view of per-slot snapshot sequences. Snapshots
//     on slot s are addressed by their 1-based arrival position; in
//     all-states streams (lattice/slicer) position == the state index of
//     Fig. 2, in candidate streams (token/centralized) the state index is
//     the snapshot's own clock component. base(s) is the GC floor: positions
//     below it have been retired and must never be read again.
//
//   - StreamCore: one detection state machine over a StateStream. on_state /
//     on_eos advance it; frontier(s) is its retention contract — the lowest
//     position on slot s the core may still read, so the stream owner can
//     retire everything below the minimum frontier across all cores sharing
//     the stream (the global-min frontier GC of the serve layer). collect()
//     tells the core to drop its own internal state below a floor.
//
// The sim::Node wrappers implement StateStream over the snapshot vectors
// they already keep (base forever 1 — simulator runs never GC), so the
// extraction changes no observable behavior of the simulator-hosted runs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/types.h"

namespace wcp::app {

/// Read-only view of per-slot snapshot sequences (see file comment for the
/// position addressing and GC contract).
class StateStream {
 public:
  virtual ~StateStream() = default;

  /// Number of predicate slots n.
  [[nodiscard]] virtual std::size_t slots() const = 0;
  /// Highest position appended on slot s (0 = nothing yet).
  [[nodiscard]] virtual StateIndex last(std::size_t s) const = 0;
  /// Lowest retained position on slot s (1 until the owner retires state).
  [[nodiscard]] virtual StateIndex base(std::size_t s) const = 0;
  /// True once slot s's stream has ended (no further positions will arrive).
  [[nodiscard]] virtual bool eos(std::size_t s) const = 0;
  /// Component t of the clock of the snapshot at (s, pos).
  /// Requires base(s) <= pos <= last(s).
  [[nodiscard]] virtual StateIndex clock(std::size_t s, StateIndex pos,
                                         std::size_t t) const = 0;
  /// Local-predicate value of the snapshot at (s, pos).
  [[nodiscard]] virtual bool pred(std::size_t s, StateIndex pos) const = 0;
};

/// Cost-accounting callbacks a core's host may install. All optional; the
/// sim::Node hosts forward them into the network metrics so the extracted
/// cores account exactly what the pre-extraction monoliths did.
struct CoreHooks {
  /// Abstract work units (one per state comparison / clock lookup).
  std::function<void(std::int64_t)> work;
  /// The core released the snapshot at (slot, pos) (centralized queue-head
  /// elimination); hosts use it for buffer accounting.
  std::function<void(std::size_t, StateIndex)> released;

  void add_work(std::int64_t units) const {
    if (work) work(units);
  }
  void release(std::size_t slot, StateIndex pos) const {
    if (released) released(slot, pos);
  }
};

/// One incremental detection state machine over a StateStream.
class StreamCore {
 public:
  virtual ~StreamCore() = default;

  /// One more snapshot was appended on slot s (now at position last(s)).
  virtual void on_state(std::size_t s) = 0;
  /// Slot s's stream ended (eos(s) just became true).
  virtual void on_eos(std::size_t s) = 0;

  /// The verdict is final: no future snapshot can change it.
  [[nodiscard]] virtual bool done() const = 0;
  [[nodiscard]] virtual bool detected() const = 0;
  /// Detected cut in slot order; empty unless detected().
  [[nodiscard]] virtual const std::vector<StateIndex>& cut() const = 0;

  /// Retention contract: the lowest position on slot s this core may still
  /// read. Non-decreasing over time; last(s) + 1 once the core is done.
  [[nodiscard]] virtual StateIndex frontier(std::size_t s) const = 0;

  /// GC hook: drop internal state strictly below the per-slot floor (the
  /// stream owner guarantees floor[s] <= frontier(s)). Default: nothing.
  virtual void collect(std::span<const StateIndex> floor) {
    (void)floor;
  }

  /// Resident footprint of the core's own state (bytes, approximate),
  /// excluding the shared stream buffer. Default: 0.
  [[nodiscard]] virtual std::int64_t resident_bytes() const { return 0; }
};

}  // namespace wcp::app
