#include "sim/latency.h"

#include <algorithm>
#include <cmath>

namespace wcp::sim {

SimTime LatencyModel::sample(Rng& rng) const {
  SimTime d = 1;
  switch (kind) {
    case Kind::kFixed:
      d = fixed;
      break;
    case Kind::kUniform:
      d = rng.uniform_int(lo, hi);
      break;
    case Kind::kExponential:
      d = static_cast<SimTime>(std::llround(rng.exponential(mean)));
      break;
    case Kind::kBimodal:
      d = rng.bernoulli(spike_prob) ? spike : fixed;
      break;
  }
  return std::max<SimTime>(1, d);
}

}  // namespace wcp::sim
