#include "sim/network.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.h"

namespace wcp::sim {

Network& Node::net() const {
  WCP_CHECK(net_ != nullptr);
  return *net_;
}

void Node::send(NodeAddr to, MsgKind kind, std::any payload,
                std::int64_t bits) {
  net().send(addr_, to, kind, std::move(payload), bits);
}

void Node::after(SimTime delay, std::function<void()> fn) {
  net().node_after(addr_, delay, std::move(fn));
}

Network::Network(NetworkConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      fault_rng_(cfg.faults.seed),
      app_metrics_(cfg.num_processes),
      // one extra monitor-layer slot for a coordinator node
      monitor_metrics_(cfg.num_processes + 1) {
  WCP_REQUIRE(cfg.num_processes >= 1, "network needs at least one process");
  drop_exact_.insert(cfg_.faults.drop_exact.begin(),
                     cfg_.faults.drop_exact.end());
  if (cfg_.reliable_all || cfg_.reliable_channels)
    transport_ = std::make_unique<ReliableTransport>(*this, cfg_.reliable);
}

Network::~Network() = default;

void Network::add_node(NodeAddr addr, std::unique_ptr<Node> node) {
  WCP_REQUIRE(node != nullptr, "null node");
  WCP_REQUIRE(!nodes_.contains(addr), "duplicate node at " << addr);
  node->net_ = this;
  node->addr_ = addr;
  nodes_.emplace(addr, std::move(node));
}

Node* Network::node(NodeAddr addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void Network::start_and_run(std::int64_t max_events) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (!crashes_scheduled_) {
    crashes_scheduled_ = true;
    for (const CrashEvent& ev : cfg_.faults.crashes) {
      // A plan may name roles this detector variant does not instantiate
      // (e.g. a coordinator crash against the single-token runner).
      if (!nodes_.contains(ev.node)) continue;
      if (ev.restart >= 0) restart_at_[ev.node] = ev.restart;
      sim_.schedule_at(ev.at, [this, ev] {
        if (down_.contains(ev.node)) return;  // overlapping windows
        set_down(ev.node, true);
        ++fault_counters_.crashes;
        nodes_.at(ev.node)->on_crash();
      });
      if (ev.restart >= 0) {
        sim_.schedule_at(ev.restart, [this, ev] {
          if (!down_.contains(ev.node)) return;
          set_down(ev.node, false);
          ++fault_counters_.restarts;
          nodes_.at(ev.node)->on_restart();
        });
      }
    }
  }
  // Deterministic start order: sort addresses.
  std::vector<NodeAddr> addrs;
  addrs.reserve(nodes_.size());
  for (const auto& [a, _] : nodes_) addrs.push_back(a);
  std::sort(addrs.begin(), addrs.end());
  for (NodeAddr a : addrs) nodes_.at(a)->on_start();
  sim_.run(max_events);
  wall_ms_ += std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
}

RunStats Network::run_stats() const {
  RunStats s;
  s.events_processed = sim_.events_processed();
  s.peak_queue_depth = sim_.peak_queue_depth();
  for (std::size_t k = 0; k < kNumMsgKinds; ++k)
    s.packets_delivered[k] = packets_delivered_[k];
  s.wall_ms = wall_ms_;
  return s;
}

bool Network::is_fifo(NodeAddr from, NodeAddr to) const {
  if (cfg_.fifo_all) return true;
  // §3.1: application -> its own monitor must be FIFO.
  return from.role == NodeRole::kApplication &&
         (to.role == NodeRole::kMonitor || to.role == NodeRole::kCoordinator);
}

bool Network::is_reliable(NodeAddr from, NodeAddr to) const {
  if (!transport_) return false;
  return cfg_.reliable_all ||
         (cfg_.reliable_channels && cfg_.reliable_channels(from, to));
}

void Network::node_after(NodeAddr who, SimTime delay, std::function<void()> fn) {
  sim_.schedule_after(delay, [this, who, fn = std::move(fn)]() mutable {
    if (is_down(who)) {
      const auto it = restart_at_.find(who);
      if (it == restart_at_.end()) return;  // crashed for good: timer dies
      const SimTime wait = it->second - sim_.now();
      // Re-queue at the restart instant; the restart event carries an older
      // sequence number, so on_restart runs before any deferred timer.
      node_after(who, wait > 0 ? wait : 0, std::move(fn));
      return;
    }
    fn();
  });
}

void Network::set_down(NodeAddr a, bool down) {
  if (down)
    down_.insert(a);
  else
    down_.erase(a);
}

void Network::send(NodeAddr from, NodeAddr to, MsgKind kind, std::any payload,
                   std::int64_t bits) {
  WCP_REQUIRE(nodes_.contains(to), "send to unknown node " << to);
  if (is_reliable(from, to)) {
    transport_->send(from, to, kind, std::move(payload), bits);
    return;
  }
  raw_send(from, to, kind, std::move(payload), bits);
}

bool Network::fault_dropped(NodeAddr from, NodeAddr to) {
  const FaultPlan& f = cfg_.faults;
  const SimTime now = sim_.now();
  for (const PartitionWindow& p : f.partitions) {
    if (now < p.start || now >= p.end) continue;
    if (from.role == NodeRole::kCoordinator || to.role == NodeRole::kCoordinator)
      continue;
    const int fp = from.pid.value();
    const int tp = to.pid.value();
    if ((fp == p.a && tp == p.b) || (fp == p.b && tp == p.a)) {
      ++fault_counters_.drops_partition;
      return true;
    }
  }
  for (const BurstLoss& b : f.bursts) {
    if (now >= b.start && now < b.start + b.length) {
      ++fault_counters_.drops_burst;
      return true;
    }
  }
  if (f.drop > 0 && fault_rng_.bernoulli(f.drop)) {
    ++fault_counters_.drops_random;
    return true;
  }
  return false;
}

void Network::raw_send(NodeAddr from, NodeAddr to, MsgKind kind,
                       std::any payload, std::int64_t bits) {
  WCP_REQUIRE(nodes_.contains(to), "send to unknown node " << to);

  // Account every physical transmission against the proper layer, so that
  // retransmits and acks show up as real overhead in the measured costs.
  if (from.role == NodeRole::kApplication) {
    app_metrics_.record_send(from.pid, kind, bits);
  } else {
    const ProcessId slot = from.role == NodeRole::kCoordinator
                               ? ProcessId(static_cast<int>(cfg_.num_processes))
                               : from.pid;
    monitor_metrics_.record_send(slot, kind, bits);
  }

  const std::int64_t idx = raw_sends_++;
  const FaultPlan& f = cfg_.faults;
  if (!drop_exact_.empty() && drop_exact_.contains(idx)) {
    ++fault_counters_.drops_random;
    return;
  }
  if (f.enabled() && fault_dropped(from, to)) return;
  const bool duplicate = f.dup > 0 && fault_rng_.bernoulli(f.dup);
  if (duplicate) ++fault_counters_.dups;

  const LatencyModel& model =
      (from.role != NodeRole::kApplication && cfg_.monitor_latency)
          ? *cfg_.monitor_latency
          : cfg_.latency;
  // Raw FIFO clamping is skipped on reliable channels: the transport's
  // resequencing buffer restores order end-to-end, and clamping could not
  // survive a dropped frame anyway.
  const bool clamp = !is_reliable(from, to) && is_fifo(from, to);
  const int copies = duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    SimTime deliver_at = sim_.now() + model.sample(rng_);
    if (clamp) {
      const std::size_t span = 2 * cfg_.num_processes + 1;
      const std::uint64_t key =
          static_cast<std::uint64_t>(from.index(cfg_.num_processes)) * span +
          to.index(cfg_.num_processes);
      auto& last = fifo_last_[key];
      deliver_at = std::max(deliver_at, last + 1);
      last = deliver_at;
    }
    Packet p{from, to, kind, bits,
             c + 1 < copies ? payload : std::move(payload)};
    sim_.schedule_at(deliver_at, [this, pkt = std::move(p)]() mutable {
      deliver(std::move(pkt));
    });
  }
}

void Network::deliver(Packet&& p) {
  if (is_down(p.to)) {
    ++fault_counters_.drops_crash;
    return;
  }
  if (transport_ && p.payload.type() == typeid(ReliableFrame)) {
    transport_->on_frame(std::move(p));
    return;
  }
  deliver_to_node(std::move(p));
}

void Network::deliver_to_node(Packet&& p) {
  ++packets_delivered_[static_cast<std::size_t>(p.kind)];
  nodes_.at(p.to)->on_packet(std::move(p));
}

}  // namespace wcp::sim
