#include "sim/network.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.h"

namespace wcp::sim {

Network& Node::net() const {
  WCP_CHECK(net_ != nullptr);
  return *net_;
}

void Node::send(NodeAddr to, MsgKind kind, std::any payload,
                std::int64_t bits) {
  net().send(addr_, to, kind, std::move(payload), bits);
}

void Node::after(SimTime delay, std::function<void()> fn) {
  net().simulator().schedule_after(delay, std::move(fn));
}

Network::Network(NetworkConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      app_metrics_(cfg.num_processes),
      // one extra monitor-layer slot for a coordinator node
      monitor_metrics_(cfg.num_processes + 1) {
  WCP_REQUIRE(cfg.num_processes >= 1, "network needs at least one process");
}

void Network::add_node(NodeAddr addr, std::unique_ptr<Node> node) {
  WCP_REQUIRE(node != nullptr, "null node");
  WCP_REQUIRE(!nodes_.contains(addr), "duplicate node at " << addr);
  node->net_ = this;
  node->addr_ = addr;
  nodes_.emplace(addr, std::move(node));
}

Node* Network::node(NodeAddr addr) {
  auto it = nodes_.find(addr);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void Network::start_and_run(std::int64_t max_events) {
  const auto wall_start = std::chrono::steady_clock::now();
  // Deterministic start order: sort addresses.
  std::vector<NodeAddr> addrs;
  addrs.reserve(nodes_.size());
  for (const auto& [a, _] : nodes_) addrs.push_back(a);
  std::sort(addrs.begin(), addrs.end());
  for (NodeAddr a : addrs) nodes_.at(a)->on_start();
  sim_.run(max_events);
  wall_ms_ += std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
}

RunStats Network::run_stats() const {
  RunStats s;
  s.events_processed = sim_.events_processed();
  s.peak_queue_depth = sim_.peak_queue_depth();
  for (std::size_t k = 0; k < kNumMsgKinds; ++k)
    s.packets_delivered[k] = packets_delivered_[k];
  s.wall_ms = wall_ms_;
  return s;
}

bool Network::is_fifo(NodeAddr from, NodeAddr to) const {
  if (cfg_.fifo_all) return true;
  // §3.1: application -> its own monitor must be FIFO.
  return from.role == NodeRole::kApplication &&
         (to.role == NodeRole::kMonitor || to.role == NodeRole::kCoordinator);
}

void Network::send(NodeAddr from, NodeAddr to, MsgKind kind, std::any payload,
                   std::int64_t bits) {
  WCP_REQUIRE(nodes_.contains(to), "send to unknown node " << to);

  // Account the send against the proper layer.
  if (from.role == NodeRole::kApplication) {
    app_metrics_.record_send(from.pid, kind, bits);
  } else {
    const ProcessId slot = from.role == NodeRole::kCoordinator
                               ? ProcessId(static_cast<int>(cfg_.num_processes))
                               : from.pid;
    monitor_metrics_.record_send(slot, kind, bits);
  }

  const LatencyModel& model =
      (from.role != NodeRole::kApplication && cfg_.monitor_latency)
          ? *cfg_.monitor_latency
          : cfg_.latency;
  SimTime deliver_at = sim_.now() + model.sample(rng_);
  if (is_fifo(from, to)) {
    const std::size_t span = 2 * cfg_.num_processes + 1;
    const std::uint64_t key =
        static_cast<std::uint64_t>(from.index(cfg_.num_processes)) * span +
        to.index(cfg_.num_processes);
    auto& last = fifo_last_[key];
    deliver_at = std::max(deliver_at, last + 1);
    last = deliver_at;
  }

  Node* dst = nodes_.at(to).get();
  Packet p{from, to, kind, bits, std::move(payload)};
  sim_.schedule_at(deliver_at,
                   [this, dst, pkt = std::move(p)]() mutable {
                     ++packets_delivered_[static_cast<std::size_t>(pkt.kind)];
                     dst->on_packet(std::move(pkt));
                   });
}

}  // namespace wcp::sim
