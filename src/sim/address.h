// Node addressing.
//
// Each application process P_i is mated to a monitor process M_i (Fig. 1 of
// the paper); detection variants may add one coordinator (the multi-token
// leader or the centralized checker). A NodeAddr names any of them.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>

#include "common/types.h"

namespace wcp::sim {

enum class NodeRole : std::uint8_t {
  kApplication = 0,
  kMonitor = 1,
  kCoordinator = 2,  // multi-token leader / centralized checker
};

struct NodeAddr {
  NodeRole role = NodeRole::kApplication;
  ProcessId pid;

  friend bool operator==(const NodeAddr&, const NodeAddr&) = default;
  friend auto operator<=>(const NodeAddr&, const NodeAddr&) = default;

  /// Dense index for per-node tables: [0,N) apps, [N,2N) monitors, 2N coord.
  [[nodiscard]] std::size_t index(std::size_t num_processes) const {
    return static_cast<std::size_t>(role) * num_processes +
           (role == NodeRole::kCoordinator ? 0 : pid.idx());
  }

  static NodeAddr app(ProcessId p) { return {NodeRole::kApplication, p}; }
  static NodeAddr monitor(ProcessId p) { return {NodeRole::kMonitor, p}; }
  static NodeAddr coordinator() { return {NodeRole::kCoordinator, ProcessId(0)}; }
};

std::ostream& operator<<(std::ostream& os, const NodeAddr& a);

}  // namespace wcp::sim

template <>
struct std::hash<wcp::sim::NodeAddr> {
  std::size_t operator()(const wcp::sim::NodeAddr& a) const noexcept {
    return (static_cast<std::size_t>(a.role) << 24) ^
           std::hash<wcp::ProcessId>{}(a.pid);
  }
};
