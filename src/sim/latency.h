// Message latency models for the simulated network.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace wcp::sim {

/// Per-message delivery delay distribution. All models return >= 1 time
/// unit so that a message is never delivered in the instant it is sent.
struct LatencyModel {
  enum class Kind : std::uint8_t { kFixed, kUniform, kExponential, kBimodal };

  Kind kind = Kind::kFixed;
  SimTime fixed = 1;          // kFixed; also the fast mode of kBimodal
  SimTime lo = 1, hi = 8;     // kUniform (inclusive)
  double mean = 4.0;          // kExponential
  double spike_prob = 0.05;   // kBimodal: chance of a slow outlier
  SimTime spike = 100;        // kBimodal: outlier delay

  [[nodiscard]] SimTime sample(Rng& rng) const;

  static LatencyModel fixed_delay(SimTime d) {
    LatencyModel m;
    m.kind = Kind::kFixed;
    m.fixed = d;
    return m;
  }
  static LatencyModel uniform(SimTime lo, SimTime hi) {
    LatencyModel m;
    m.kind = Kind::kUniform;
    m.lo = lo;
    m.hi = hi;
    return m;
  }
  static LatencyModel exponential(double mean) {
    LatencyModel m;
    m.kind = Kind::kExponential;
    m.mean = mean;
    return m;
  }
  /// Mostly-fast network with rare large delay spikes (failure injection:
  /// a retransmit / partition blip). Never reorders app->monitor FIFO
  /// channels — the network layer enforces that — but aggressively
  /// reorders everything else.
  static LatencyModel bimodal(SimTime fast, double spike_prob,
                              SimTime spike) {
    LatencyModel m;
    m.kind = Kind::kBimodal;
    m.fixed = fast;
    m.spike_prob = spike_prob;
    m.spike = spike;
    return m;
  }
};

}  // namespace wcp::sim
