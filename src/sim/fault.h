// Deterministic fault injection for the simulated network.
//
// The paper's algorithms (§2, §3.1) assume reliable loss-free channels; a
// FaultPlan deliberately breaks that assumption so the detectors can be
// exercised over the kind of substrate a real deployment provides: random
// per-message loss, duplication, burst outages, pairwise partitions, and
// scheduled process crash/restart. All sampling draws from a dedicated Rng
// seeded by `FaultPlan::seed`, so a run's fault schedule — and therefore
// the `faults` block of its JSON run report — is a pure function of
// (computation, seed, latency model, fault plan).
//
// Companion pieces:
//   - sim/reliable.h   regains exactly-once FIFO delivery over the faults,
//   - detect/token_vc  token lease/heartbeat recovery across crashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/address.h"

namespace wcp::sim {

/// One scheduled crash window: the node is unreachable (deliveries dropped,
/// local timers deferred) in [at, restart); its volatile state is discarded
/// via Node::on_crash and it resumes via Node::on_restart. `restart < 0`
/// means the node never comes back.
struct CrashEvent {
  NodeAddr node;
  SimTime at = 0;
  SimTime restart = -1;
};

/// A window during which every channel drops every message.
struct BurstLoss {
  SimTime start = 0;
  SimTime length = 0;
};

/// A window during which processes `a` and `b` cannot exchange messages in
/// either direction (any role pair except the coordinator, whose pid would
/// alias application process 0).
struct PartitionWindow {
  int a = 0;
  int b = 0;
  SimTime start = 0;
  SimTime end = 0;
};

/// Declarative, seed-deterministic fault schedule for one run.
struct FaultPlan {
  double drop = 0.0;  ///< per-transmission loss probability
  double dup = 0.0;   ///< per-transmission duplication probability
  std::vector<BurstLoss> bursts;
  std::vector<PartitionWindow> partitions;
  std::vector<CrashEvent> crashes;
  /// Drop exactly these raw transmissions (0-based global send indices).
  /// Used by the exhaustive single-drop schedule exploration tests.
  std::vector<std::int64_t> drop_exact;
  std::uint64_t seed = 1;  ///< fault-sampling stream (separate from latency)

  [[nodiscard]] bool enabled() const {
    return drop > 0 || dup > 0 || !bursts.empty() || !partitions.empty() ||
           !crashes.empty() || !drop_exact.empty();
  }
  [[nodiscard]] bool has_crashes() const { return !crashes.empty(); }

  /// Round-trippable compact spec, e.g.
  ///   "drop=0.2,dup=0.05,seed=7,crash=m1@40+30,burst=100+20,part=0-2@50-110"
  /// Crash targets: mK = monitor of process K, aK = application process K,
  /// c = coordinator; "@AT+LEN" gives the outage window (omit +LEN for a
  /// crash without restart). Throws wcp::Error on a malformed spec.
  static FaultPlan parse(const std::string& spec);
  [[nodiscard]] std::string to_string() const;

  // Presets for the chaos sweeps.
  static FaultPlan lossy(double drop_prob, std::uint64_t seed = 1);
  static FaultPlan lossy_dup(double drop_prob, double dup_prob,
                             std::uint64_t seed = 1);
  static FaultPlan flaky(std::uint64_t seed = 1);  ///< drop+dup+burst mix
};

}  // namespace wcp::sim
