#include "sim/reliable.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "sim/network.h"

namespace wcp::sim {

ReliableTransport::ReliableTransport(Network& net, ReliableConfig cfg)
    : net_(net), cfg_(cfg) {
  WCP_REQUIRE(cfg_.rto_initial >= 1 && cfg_.rto_cap >= cfg_.rto_initial,
              "reliable transport needs 1 <= rto_initial <= rto_cap");
}

std::uint64_t ReliableTransport::channel_key(NodeAddr from, NodeAddr to) const {
  const std::size_t span = 2 * net_.num_processes() + 1;
  return static_cast<std::uint64_t>(from.index(net_.num_processes())) * span +
         to.index(net_.num_processes());
}

void ReliableTransport::send(NodeAddr from, NodeAddr to, MsgKind kind,
                             std::any payload, std::int64_t bits) {
  const std::uint64_t key = channel_key(from, to);
  auto& ch = senders_[key];
  ch.from = from;
  ch.to = to;
  const std::int64_t seq = ++ch.next_seq;
  ch.unacked.emplace(
      seq, Unacked{kind, std::move(payload), bits, cfg_.rto_initial});
  transmit(ch, seq);
  arm_retransmit(key, seq, cfg_.rto_initial);
}

void ReliableTransport::transmit(SenderChannel& ch, std::int64_t seq) {
  const auto it = ch.unacked.find(seq);
  if (it == ch.unacked.end()) return;
  ReliableFrame f;
  f.type = ReliableFrame::Type::kData;
  f.seq = seq;
  f.inner_kind = it->second.kind;
  f.inner_bits = it->second.bits;
  f.inner = it->second.payload;  // keep the original for retransmission
  // The frame keeps the logical kind on the wire so per-kind message/bit
  // accounting still reflects what the channel carries.
  net_.raw_send(ch.from, ch.to, it->second.kind, std::any(std::move(f)),
                it->second.bits + cfg_.header_bits);
}

void ReliableTransport::arm_retransmit(std::uint64_t key, std::int64_t seq,
                                       SimTime delay) {
  // node_after, not a plain timer: a crashed sender stops retransmitting
  // until it restarts (its unacked buffer models durable transport state).
  net_.node_after(senders_.at(key).from, delay,
                  [this, key, seq] { on_retransmit_timer(key, seq); });
}

void ReliableTransport::on_retransmit_timer(std::uint64_t key,
                                            std::int64_t seq) {
  const auto it = senders_.find(key);
  if (it == senders_.end()) return;
  SenderChannel& ch = it->second;
  const auto u = ch.unacked.find(seq);
  if (u == ch.unacked.end()) return;  // acked in the meantime
  if (net_.is_down_forever(ch.to)) {
    // Destination crashed with no scheduled restart. Keep the unacked state
    // but stop the timer chain so the simulation can drain.
    return;
  }
  ++net_.fault_counters().retransmits;
  transmit(ch, seq);
  u->second.rto = std::min(u->second.rto * 2, cfg_.rto_cap);
  arm_retransmit(key, seq, u->second.rto);
}

void ReliableTransport::send_ack(NodeAddr receiver, NodeAddr sender,
                                 std::int64_t cumulative) {
  ++net_.fault_counters().acks;
  ReliableFrame f;
  f.type = ReliableFrame::Type::kAck;
  f.seq = cumulative;
  net_.raw_send(receiver, sender, MsgKind::kControl, std::any(std::move(f)),
                cfg_.header_bits);
}

void ReliableTransport::on_frame(Packet&& p) {
  ReliableFrame f = std::any_cast<ReliableFrame>(std::move(p.payload));

  if (f.type == ReliableFrame::Type::kAck) {
    // The ack travelled receiver -> sender; the data channel is (to, from).
    const auto it = senders_.find(channel_key(p.to, p.from));
    if (it == senders_.end()) return;
    SenderChannel& ch = it->second;
    if (f.seq <= ch.acked) return;  // stale cumulative ack
    ch.acked = f.seq;
    ch.unacked.erase(ch.unacked.begin(), ch.unacked.upper_bound(f.seq));
    return;
  }

  const std::uint64_t key = channel_key(p.from, p.to);
  ReceiverChannel& rc = receivers_[key];
  if (f.seq <= rc.delivered || rc.pending.contains(f.seq)) {
    ++net_.fault_counters().dup_suppressed;
  } else if (f.seq == rc.delivered + 1) {
    // In order: hand it up, then flush any buffered successors.
    rc.delivered = f.seq;
    net_.deliver_to_node(
        Packet{p.from, p.to, f.inner_kind, f.inner_bits, std::move(f.inner)});
    for (auto nit = rc.pending.find(rc.delivered + 1); nit != rc.pending.end();
         nit = rc.pending.find(rc.delivered + 1)) {
      ReliableFrame nf = std::move(nit->second);
      rc.pending.erase(nit);
      rc.delivered = nf.seq;
      net_.deliver_to_node(Packet{p.from, p.to, nf.inner_kind, nf.inner_bits,
                                  std::move(nf.inner)});
    }
  } else {
    ++net_.fault_counters().resequenced;
    rc.pending.emplace(f.seq, std::move(f));
  }
  // Re-ack on every arrival (including duplicates): a lost ack is repaired
  // by the retransmission it provokes.
  send_ack(p.to, p.from, rc.delivered);
}

}  // namespace wcp::sim
