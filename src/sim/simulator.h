// Deterministic discrete-event scheduler.
//
// All online detection runs execute on this single-threaded event loop.
// Events with equal timestamps fire in scheduling order (a monotone sequence
// number breaks ties), so a run is a pure function of (computation, seed,
// latency model) — a property the whole test suite leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace wcp::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time t (>= now).
  void schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` to run `delay` units from now (delay >= 0).
  void schedule_after(SimTime delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run the earliest pending event. Returns false if none is pending.
  bool step();

  /// Run until no events remain or `max_events` have been processed.
  void run(std::int64_t max_events = -1);

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::int64_t events_processed() const { return processed_; }

  /// High-water mark of pending events (scheduler-pressure metric for run
  /// reports; monotone over the run).
  [[nodiscard]] std::int64_t peak_queue_depth() const { return peak_depth_; }

  /// Request the loop to stop after the current event (used on detection).
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  struct Entry {
    SimTime t;
    std::int64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  // Explicit binary heap (std::push_heap/pop_heap over a vector) instead of
  // std::priority_queue: top() there is const, which forced a deep
  // std::function copy of every callback on the hottest line of every
  // online run; popping to the back lets the entry be moved out.
  std::vector<Entry> heap_;
  SimTime now_ = 0;
  std::int64_t seq_ = 0;
  std::int64_t processed_ = 0;
  std::int64_t peak_depth_ = 0;
  bool stopped_ = false;
};

}  // namespace wcp::sim
