#include "sim/address.h"

#include <ostream>

namespace wcp::sim {

std::ostream& operator<<(std::ostream& os, const NodeAddr& a) {
  switch (a.role) {
    case NodeRole::kApplication: return os << "AP" << a.pid.value();
    case NodeRole::kMonitor: return os << "MP" << a.pid.value();
    case NodeRole::kCoordinator: return os << "COORD";
  }
  return os;
}

}  // namespace wcp::sim
