#include "sim/simulator.h"

#include <algorithm>

#include "common/error.h"

namespace wcp::sim {

void Simulator::schedule_at(SimTime t, Callback cb) {
  WCP_REQUIRE(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  heap_.push_back(Entry{t, seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  peak_depth_ = std::max(peak_depth_, static_cast<std::int64_t>(heap_.size()));
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  now_ = e.t;
  ++processed_;
  e.cb();
  return true;
}

void Simulator::run(std::int64_t max_events) {
  while (!stopped_ && (max_events < 0 || processed_ < max_events) && step()) {
  }
}

}  // namespace wcp::sim
