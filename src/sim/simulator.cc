#include "sim/simulator.h"

#include "common/error.h"

namespace wcp::sim {

void Simulator::schedule_at(SimTime t, Callback cb) {
  WCP_REQUIRE(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  queue_.push(Entry{t, seq_++, std::move(cb)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (std::function copy) instead.
  Entry e = queue_.top();
  queue_.pop();
  now_ = e.t;
  ++processed_;
  e.cb();
  return true;
}

void Simulator::run(std::int64_t max_events) {
  while (!stopped_ && (max_events < 0 || processed_ < max_events) && step()) {
  }
}

}  // namespace wcp::sim
