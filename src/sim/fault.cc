#include "sim/fault.h"

#include <charconv>
#include <sstream>

#include "common/error.h"

namespace wcp::sim {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_double(const std::string& s) {
  double v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  WCP_REQUIRE(ec == std::errc() && p == s.data() + s.size(),
              "bad number '" << s << "' in fault spec");
  return v;
}

std::int64_t parse_int(const std::string& s) {
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  WCP_REQUIRE(ec == std::errc() && p == s.data() + s.size(),
              "bad integer '" << s << "' in fault spec");
  return v;
}

NodeAddr parse_node(const std::string& s) {
  WCP_REQUIRE(!s.empty(), "empty crash target in fault spec");
  if (s == "c") return NodeAddr::coordinator();
  const char role = s[0];
  WCP_REQUIRE(role == 'm' || role == 'a',
              "crash target '" << s << "' must be mK, aK or c");
  const int pid = static_cast<int>(parse_int(s.substr(1)));
  return role == 'm' ? NodeAddr::monitor(ProcessId(pid))
                     : NodeAddr::app(ProcessId(pid));
}

std::string node_spec(const NodeAddr& a) {
  if (a.role == NodeRole::kCoordinator) return "c";
  std::ostringstream oss;
  oss << (a.role == NodeRole::kMonitor ? 'm' : 'a') << a.pid.value();
  return oss.str();
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    WCP_REQUIRE(eq != std::string::npos,
                "fault spec item '" << item << "' needs key=value");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "drop") {
      plan.drop = parse_double(val);
    } else if (key == "dup") {
      plan.dup = parse_double(val);
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int(val));
    } else if (key == "burst") {
      // START+LEN
      const auto plus = val.find('+');
      WCP_REQUIRE(plus != std::string::npos, "burst needs START+LEN: " << val);
      plan.bursts.push_back({parse_int(val.substr(0, plus)),
                             parse_int(val.substr(plus + 1))});
    } else if (key == "part") {
      // A-B@START-END
      const auto dash = val.find('-');
      const auto at = val.find('@');
      WCP_REQUIRE(dash != std::string::npos && at != std::string::npos &&
                      dash < at,
                  "partition needs A-B@START-END: " << val);
      const auto dash2 = val.find('-', at);
      WCP_REQUIRE(dash2 != std::string::npos,
                  "partition needs A-B@START-END: " << val);
      plan.partitions.push_back(
          {static_cast<int>(parse_int(val.substr(0, dash))),
           static_cast<int>(parse_int(val.substr(dash + 1, at - dash - 1))),
           parse_int(val.substr(at + 1, dash2 - at - 1)),
           parse_int(val.substr(dash2 + 1))});
    } else if (key == "crash") {
      // NODE@AT[+LEN]
      const auto at = val.find('@');
      WCP_REQUIRE(at != std::string::npos, "crash needs NODE@AT[+LEN]: " << val);
      CrashEvent ev;
      ev.node = parse_node(val.substr(0, at));
      const auto plus = val.find('+', at);
      if (plus == std::string::npos) {
        ev.at = parse_int(val.substr(at + 1));
        ev.restart = -1;
      } else {
        ev.at = parse_int(val.substr(at + 1, plus - at - 1));
        ev.restart = ev.at + parse_int(val.substr(plus + 1));
      }
      plan.crashes.push_back(ev);
    } else {
      WCP_REQUIRE(false, "unknown fault spec key '" << key << "'");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream oss;
  const char* sep = "";
  const auto emit = [&](auto&&... parts) {
    oss << sep;
    (oss << ... << parts);
    sep = ",";
  };
  if (drop > 0) emit("drop=", drop);
  if (dup > 0) emit("dup=", dup);
  if (seed != 1) emit("seed=", seed);
  for (const auto& b : bursts) emit("burst=", b.start, "+", b.length);
  for (const auto& p : partitions)
    emit("part=", p.a, "-", p.b, "@", p.start, "-", p.end);
  for (const auto& c : crashes) {
    emit("crash=", node_spec(c.node), "@", c.at);
    if (c.restart >= 0) oss << "+" << (c.restart - c.at);
  }
  return oss.str();
}

FaultPlan FaultPlan::lossy(double drop_prob, std::uint64_t seed) {
  FaultPlan p;
  p.drop = drop_prob;
  p.seed = seed;
  return p;
}

FaultPlan FaultPlan::lossy_dup(double drop_prob, double dup_prob,
                               std::uint64_t seed) {
  FaultPlan p;
  p.drop = drop_prob;
  p.dup = dup_prob;
  p.seed = seed;
  return p;
}

FaultPlan FaultPlan::flaky(std::uint64_t seed) {
  FaultPlan p;
  p.drop = 0.15;
  p.dup = 0.1;
  p.bursts.push_back({60, 25});
  p.bursts.push_back({200, 15});
  p.seed = seed;
  return p;
}

}  // namespace wcp::sim
