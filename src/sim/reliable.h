// Ack/retransmission transport: exactly-once FIFO delivery over the lossy
// network that sim/fault.h produces.
//
// The paper assumes reliable channels plus FIFO app->monitor links (§2,
// §3.1). When a FaultPlan drops, duplicates or reorders traffic, channels
// that opted into this transport regain exactly those guarantees:
//   - every logical message is eventually delivered exactly once
//     (per-message sequence numbers; timeout retransmission with
//     exponential backoff capped at `rto_cap`; cumulative acks;
//     duplicate suppression at the receiver),
//   - delivery order per channel equals send order (a resequencing
//     buffer holds out-of-order frames until the gap fills).
//
// The transport lives inside the Network (one instance per run) but its
// state is logically per-node: a sender's unacked buffer and a receiver's
// resequencing buffer model durable per-process transport state that
// survives a crash/restart of that process (write-ahead-log style), while
// frames in flight to a crashed process are lost like any other message.
// Retransmission timers of a crashed sender hold off until it restarts.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/metrics.h"
#include "sim/address.h"

namespace wcp::sim {

class Network;
struct Packet;

/// Transport tuning. All values are virtual-time units.
struct ReliableConfig {
  SimTime rto_initial = 24;  ///< first retransmission timeout
  SimTime rto_cap = 192;     ///< exponential backoff ceiling
  std::int64_t header_bits = 64;  ///< per-frame seq/ack overhead on the wire
};

/// On-the-wire unit of the transport. Data frames carry the logical message
/// (kind/payload/bits) plus a channel sequence number; ack frames carry the
/// receiver's cumulative in-order high-water mark. Frames never reach
/// Node::on_packet — the Network routes them through ReliableTransport.
struct ReliableFrame {
  enum class Type : std::uint8_t { kData, kAck };
  Type type = Type::kData;
  std::int64_t seq = 0;  ///< data: channel sequence (1-based); ack: cumulative
  MsgKind inner_kind = MsgKind::kApplication;
  std::int64_t inner_bits = 0;
  std::any inner;
};

class ReliableTransport {
 public:
  ReliableTransport(Network& net, ReliableConfig cfg);

  /// Sender entry point: assigns the next channel sequence number, keeps a
  /// retransmittable copy until acked, and transmits over the lossy layer.
  void send(NodeAddr from, NodeAddr to, MsgKind kind, std::any payload,
            std::int64_t bits);

  /// Receiver entry point: called by the Network when a frame reaches an
  /// up destination. Handles acks, suppresses duplicates, resequences, and
  /// hands in-order logical packets back to the Network for node delivery.
  void on_frame(Packet&& frame);

 private:
  struct Unacked {
    MsgKind kind;
    std::any payload;
    std::int64_t bits = 0;
    SimTime rto = 0;  ///< current backoff value
  };
  struct SenderChannel {
    NodeAddr from, to;
    std::int64_t next_seq = 0;   ///< last assigned
    std::int64_t acked = 0;      ///< cumulative ack received
    std::map<std::int64_t, Unacked> unacked;
  };
  struct ReceiverChannel {
    std::int64_t delivered = 0;  ///< cumulative in-order high-water mark
    std::map<std::int64_t, ReliableFrame> pending;  ///< out-of-order buffer
  };

  [[nodiscard]] std::uint64_t channel_key(NodeAddr from, NodeAddr to) const;
  void transmit(SenderChannel& ch, std::int64_t seq);
  void arm_retransmit(std::uint64_t key, std::int64_t seq, SimTime delay);
  void on_retransmit_timer(std::uint64_t key, std::int64_t seq);
  void send_ack(NodeAddr receiver, NodeAddr sender, std::int64_t cumulative);

  Network& net_;
  ReliableConfig cfg_;
  std::unordered_map<std::uint64_t, SenderChannel> senders_;
  std::unordered_map<std::uint64_t, ReceiverChannel> receivers_;
};

}  // namespace wcp::sim
