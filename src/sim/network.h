// Simulated asynchronous message-passing network (the §2 system model).
//
// Channels are point-to-point with per-message random latency. The paper's
// model does NOT assume FIFO application channels, but DOES require FIFO
// delivery from an application process to its monitor (§3.1); the network
// enforces exactly that by default. `fifo_all` can widen FIFO to every
// channel, and tests run both settings to show the detectors only need the
// mandated guarantee.
//
// Cost accounting (messages, bits, per-process work, buffered bytes) is
// recorded here so every detector's complexity is measured uniformly.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/address.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/reliable.h"
#include "sim/simulator.h"

namespace wcp::sim {

class Network;

/// A delivered message.
struct Packet {
  NodeAddr from;
  NodeAddr to;
  MsgKind kind = MsgKind::kApplication;
  std::int64_t bits = 0;
  std::any payload;
};

/// Base class for simulated processes (application drivers, monitors,
/// coordinators). Nodes are owned by the Network and react to packets.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once when the simulation starts.
  virtual void on_start() {}

  /// Called for every delivered packet.
  virtual void on_packet(Packet&& p) = 0;

  /// Fault-injection hooks (FaultPlan crash schedule). on_crash must discard
  /// the node's volatile state; state a real process would keep on stable
  /// storage (e.g. a logged snapshot inbox) may survive. Timers scheduled
  /// via after() are deferred across the outage, not lost.
  virtual void on_crash() {}
  virtual void on_restart() {}

 protected:
  [[nodiscard]] Network& net() const;
  [[nodiscard]] NodeAddr addr() const { return addr_; }
  [[nodiscard]] ProcessId pid() const { return addr_.pid; }

  /// Send a message; latency and metrics handled by the network.
  void send(NodeAddr to, MsgKind kind, std::any payload, std::int64_t bits);

  /// Schedule a local timer callback.
  void after(SimTime delay, std::function<void()> fn);

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeAddr addr_{};
};

struct NetworkConfig {
  std::size_t num_processes = 1;       ///< N
  LatencyModel latency{};              ///< applied to every message
  /// Optional separate latency for monitor-layer traffic (token, polls,
  /// leader round-trips). Lets experiments model a detection overlay that
  /// is slower/faster than the application interconnect (used by E6/E7).
  std::optional<LatencyModel> monitor_latency;
  bool fifo_all = false;               ///< FIFO on all channels, not just app->monitor
  std::uint64_t seed = 1;              ///< drives latency sampling only

  /// Fault injection (loss, duplication, bursts, partitions, crashes).
  /// Disabled by default; sampling uses its own Rng (faults.seed).
  FaultPlan faults;
  /// Reliable-transport tuning for channels that opt in.
  ReliableConfig reliable;
  /// Run EVERY channel over the ack/retransmit transport. Detection runners
  /// set this whenever faults are enabled: under loss or duplication, raw
  /// channels break both the replay and the snapshot streams.
  bool reliable_all = false;
  /// Per-channel opt-in: a channel is reliable iff reliable_all or this
  /// predicate (when set) returns true for (from, to).
  std::function<bool(const NodeAddr&, const NodeAddr&)> reliable_channels;
};

class Network {
 public:
  explicit Network(NetworkConfig cfg);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] std::size_t num_processes() const { return cfg_.num_processes; }

  /// Register a node; must happen before start().
  void add_node(NodeAddr addr, std::unique_ptr<Node> node);

  [[nodiscard]] Node* node(NodeAddr addr);

  /// Calls on_start on every node, then runs the event loop to completion
  /// (or until a node calls simulator().stop()).
  void start_and_run(std::int64_t max_events = -1);

  void send(NodeAddr from, NodeAddr to, MsgKind kind, std::any payload,
            std::int64_t bits);

  // ---- accounting ---------------------------------------------------------
  /// Execution statistics of the run so far: event-loop totals, scheduler
  /// pressure, delivered packets per kind, and host wall-clock spent inside
  /// start_and_run (the one nondeterministic field).
  [[nodiscard]] RunStats run_stats() const;

  [[nodiscard]] Metrics& app_metrics() { return app_metrics_; }
  [[nodiscard]] Metrics& monitor_metrics() { return monitor_metrics_; }
  [[nodiscard]] const Metrics& app_metrics() const { return app_metrics_; }
  [[nodiscard]] const Metrics& monitor_metrics() const { return monitor_metrics_; }

  /// Abstract work units, attributed to monitor-layer processes.
  void add_monitor_work(ProcessId p, std::int64_t units) {
    monitor_metrics_.add_work(p, units);
  }
  void monitor_buffer_change(ProcessId p, std::int64_t delta_bytes,
                             std::int64_t delta_count) {
    monitor_metrics_.buffer_change(p, delta_bytes, delta_count);
  }
  void bump_token_hops() { monitor_metrics_.bump_token_hops(); }

  [[nodiscard]] Rng& rng() { return rng_; }

  // ---- fault injection -----------------------------------------------------
  [[nodiscard]] FaultCounters& fault_counters() { return fault_counters_; }
  [[nodiscard]] const FaultCounters& fault_counters() const {
    return fault_counters_;
  }
  /// True while `a` is inside a scheduled crash window.
  [[nodiscard]] bool is_down(NodeAddr a) const { return down_.contains(a); }
  /// True once `a` has crashed with no restart scheduled. Recovery logic
  /// (transport retransmission, token regeneration) gives up on such nodes
  /// so the simulation can drain.
  [[nodiscard]] bool is_down_forever(NodeAddr a) const {
    return down_.contains(a) && !restart_at_.contains(a);
  }
  /// Raw transmissions attempted so far (including retransmits and acks);
  /// the index space FaultPlan::drop_exact addresses.
  [[nodiscard]] std::int64_t raw_sends() const { return raw_sends_; }
  /// Whether (from, to) runs over the ack/retransmit transport.
  [[nodiscard]] bool is_reliable(NodeAddr from, NodeAddr to) const;

  /// Schedule `fn` as a local timer of node `who`: if `who` is down when the
  /// timer fires, it is deferred until just after the restart.
  void node_after(NodeAddr who, SimTime delay, std::function<void()> fn);

 private:
  friend class ReliableTransport;

  [[nodiscard]] bool is_fifo(NodeAddr from, NodeAddr to) const;

  /// Physical-layer send: accounts metrics, applies the fault plan (drop /
  /// duplicate), samples latency, and schedules delivery. Reliable-channel
  /// frames and raw messages both go through here.
  void raw_send(NodeAddr from, NodeAddr to, MsgKind kind, std::any payload,
                std::int64_t bits);
  /// Delivers one packet to its node (transport frames detour through
  /// ReliableTransport first). Drops it if the destination is down.
  void deliver(Packet&& p);
  /// In-order logical delivery: bumps packet counters, calls on_packet.
  void deliver_to_node(Packet&& p);
  void set_down(NodeAddr a, bool down);
  [[nodiscard]] bool fault_dropped(NodeAddr from, NodeAddr to);

  NetworkConfig cfg_;
  Simulator sim_;
  Rng rng_;
  Rng fault_rng_;
  std::unordered_map<NodeAddr, std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, SimTime> fifo_last_;  // channel key -> time
  Metrics app_metrics_;
  Metrics monitor_metrics_;
  FaultCounters fault_counters_;
  std::unique_ptr<ReliableTransport> transport_;  // set iff any channel opts in
  std::unordered_set<NodeAddr> down_;
  std::unordered_map<NodeAddr, SimTime> restart_at_;  // -1 entries excluded
  std::unordered_set<std::int64_t> drop_exact_;
  std::int64_t raw_sends_ = 0;
  bool crashes_scheduled_ = false;
  std::int64_t packets_delivered_[kNumMsgKinds] = {};
  double wall_ms_ = 0.0;  // host time spent inside start_and_run
};

}  // namespace wcp::sim
