// Simulated asynchronous message-passing network (the §2 system model).
//
// Channels are point-to-point with per-message random latency. The paper's
// model does NOT assume FIFO application channels, but DOES require FIFO
// delivery from an application process to its monitor (§3.1); the network
// enforces exactly that by default. `fifo_all` can widen FIFO to every
// channel, and tests run both settings to show the detectors only need the
// mandated guarantee.
//
// Cost accounting (messages, bits, per-process work, buffered bytes) is
// recorded here so every detector's complexity is measured uniformly.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/address.h"
#include "sim/latency.h"
#include "sim/simulator.h"

namespace wcp::sim {

class Network;

/// A delivered message.
struct Packet {
  NodeAddr from;
  NodeAddr to;
  MsgKind kind = MsgKind::kApplication;
  std::int64_t bits = 0;
  std::any payload;
};

/// Base class for simulated processes (application drivers, monitors,
/// coordinators). Nodes are owned by the Network and react to packets.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once when the simulation starts.
  virtual void on_start() {}

  /// Called for every delivered packet.
  virtual void on_packet(Packet&& p) = 0;

 protected:
  [[nodiscard]] Network& net() const;
  [[nodiscard]] NodeAddr addr() const { return addr_; }
  [[nodiscard]] ProcessId pid() const { return addr_.pid; }

  /// Send a message; latency and metrics handled by the network.
  void send(NodeAddr to, MsgKind kind, std::any payload, std::int64_t bits);

  /// Schedule a local timer callback.
  void after(SimTime delay, std::function<void()> fn);

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeAddr addr_{};
};

struct NetworkConfig {
  std::size_t num_processes = 1;       ///< N
  LatencyModel latency{};              ///< applied to every message
  /// Optional separate latency for monitor-layer traffic (token, polls,
  /// leader round-trips). Lets experiments model a detection overlay that
  /// is slower/faster than the application interconnect (used by E6/E7).
  std::optional<LatencyModel> monitor_latency;
  bool fifo_all = false;               ///< FIFO on all channels, not just app->monitor
  std::uint64_t seed = 1;              ///< drives latency sampling only
};

class Network {
 public:
  explicit Network(NetworkConfig cfg);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] std::size_t num_processes() const { return cfg_.num_processes; }

  /// Register a node; must happen before start().
  void add_node(NodeAddr addr, std::unique_ptr<Node> node);

  [[nodiscard]] Node* node(NodeAddr addr);

  /// Calls on_start on every node, then runs the event loop to completion
  /// (or until a node calls simulator().stop()).
  void start_and_run(std::int64_t max_events = -1);

  void send(NodeAddr from, NodeAddr to, MsgKind kind, std::any payload,
            std::int64_t bits);

  // ---- accounting ---------------------------------------------------------
  /// Execution statistics of the run so far: event-loop totals, scheduler
  /// pressure, delivered packets per kind, and host wall-clock spent inside
  /// start_and_run (the one nondeterministic field).
  [[nodiscard]] RunStats run_stats() const;

  [[nodiscard]] Metrics& app_metrics() { return app_metrics_; }
  [[nodiscard]] Metrics& monitor_metrics() { return monitor_metrics_; }
  [[nodiscard]] const Metrics& app_metrics() const { return app_metrics_; }
  [[nodiscard]] const Metrics& monitor_metrics() const { return monitor_metrics_; }

  /// Abstract work units, attributed to monitor-layer processes.
  void add_monitor_work(ProcessId p, std::int64_t units) {
    monitor_metrics_.add_work(p, units);
  }
  void monitor_buffer_change(ProcessId p, std::int64_t delta_bytes,
                             std::int64_t delta_count) {
    monitor_metrics_.buffer_change(p, delta_bytes, delta_count);
  }
  void bump_token_hops() { monitor_metrics_.bump_token_hops(); }

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  [[nodiscard]] bool is_fifo(NodeAddr from, NodeAddr to) const;

  NetworkConfig cfg_;
  Simulator sim_;
  Rng rng_;
  std::unordered_map<NodeAddr, std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, SimTime> fifo_last_;  // channel key -> time
  Metrics app_metrics_;
  Metrics monitor_metrics_;
  std::int64_t packets_delivered_[kNumMsgKinds] = {};
  double wall_ms_ = 0.0;  // host time spent inside start_and_run
};

}  // namespace wcp::sim
