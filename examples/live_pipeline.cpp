// Live (non-replayed) detection: a producer/worker/collector pipeline whose
// nodes are ordinary user-written simulator actors carrying an
// app::Instrument. The WCP is "every worker is drained" — idle after having
// processed at least one job — a classic lull-detection predicate.
//
// This demonstrates the adoption path for real programs: stamp outgoing
// messages with Instrument::on_send, feed received headers to on_receive,
// report the local predicate with set_predicate — the unchanged token
// algorithm monitors do the rest. A shared Recorder reconstructs the run's
// computation so the detected cut can be checked against the offline
// oracle afterwards.
//
//   $ ./live_pipeline [workers] [jobs] [seed]
#include <cstdlib>
#include <deque>
#include <iostream>

#include "app/instrument.h"
#include "detect/token_vc.h"

namespace {

using namespace wcp;

struct JobMsg {
  app::ClockHeader hdr;
  int payload = 0;
};

class Producer final : public sim::Node {
 public:
  Producer(app::Instrument::Config icfg, std::vector<ProcessId> workers,
           int jobs)
      : icfg_(std::move(icfg)), workers_(std::move(workers)), jobs_(jobs) {}

  void on_start() override {
    inst_.emplace(net(), pid(), icfg_);
    produce();
  }
  void on_packet(sim::Packet&&) override {}

 private:
  void produce() {
    if (sent_ >= jobs_) return;
    const ProcessId worker = workers_[static_cast<std::size_t>(sent_) %
                                      workers_.size()];
    JobMsg msg{inst_->on_send(worker), sent_};
    send(sim::NodeAddr::app(worker), MsgKind::kApplication, msg,
         msg.hdr.bits() + 64);
    ++sent_;
    after(1 + net().rng().index(5), [this] { produce(); });
  }

  app::Instrument::Config icfg_;
  std::optional<app::Instrument> inst_;
  std::vector<ProcessId> workers_;
  int jobs_;
  int sent_ = 0;
};

class Worker final : public sim::Node {
 public:
  Worker(app::Instrument::Config icfg, ProcessId collector)
      : icfg_(std::move(icfg)), collector_(collector) {}

  void on_start() override {
    inst_.emplace(net(), pid(), icfg_);
    inst_->set_predicate(false);  // not yet drained (no job processed)
  }

  void on_packet(sim::Packet&& p) override {
    auto job = std::any_cast<JobMsg>(std::move(p.payload));
    inst_->on_receive(p.from.pid, job.hdr);
    inst_->set_predicate(false);  // busy
    queue_.push_back(job.payload);
    if (!busy_) work();
  }

 private:
  void work() {
    busy_ = true;
    after(2 + net().rng().index(6), [this] {
      const int done = queue_.front();
      queue_.pop_front();
      JobMsg result{inst_->on_send(collector_), done};
      send(sim::NodeAddr::app(collector_), MsgKind::kApplication, result,
           result.hdr.bits() + 64);
      ++processed_;
      if (queue_.empty()) {
        busy_ = false;
        // Drained: idle with at least one job processed.
        inst_->set_predicate(processed_ > 0);
      } else {
        work();
      }
    });
  }

  app::Instrument::Config icfg_;
  std::optional<app::Instrument> inst_;
  ProcessId collector_;
  std::deque<int> queue_;
  bool busy_ = false;
  int processed_ = 0;
};

class Collector final : public sim::Node {
 public:
  explicit Collector(app::Instrument::Config icfg) : icfg_(std::move(icfg)) {}
  void on_start() override { inst_.emplace(net(), pid(), icfg_); }
  void on_packet(sim::Packet&& p) override {
    auto msg = std::any_cast<JobMsg>(std::move(p.payload));
    inst_->on_receive(p.from.pid, msg.hdr);
    ++collected_;
  }
  [[nodiscard]] int collected() const { return collected_; }

 private:
  app::Instrument::Config icfg_;
  std::optional<app::Instrument> inst_;
  int collected_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wcp;

  const std::size_t num_workers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const int jobs = argc > 2 ? static_cast<int>(std::strtol(argv[2], nullptr, 10)) : 9;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  // Layout: workers P0..Pk-1, producer Pk, collector Pk+1.
  const std::size_t N = num_workers + 2;
  const ProcessId producer(static_cast<int>(num_workers));
  const ProcessId collector(static_cast<int>(num_workers + 1));
  std::vector<ProcessId> workers;
  for (std::size_t w = 0; w < num_workers; ++w)
    workers.emplace_back(static_cast<int>(w));

  sim::NetworkConfig cfg;
  cfg.num_processes = N;
  cfg.latency = sim::LatencyModel::uniform(1, 6);
  cfg.seed = seed;
  sim::Network net(cfg);

  auto recorder = std::make_shared<app::Recorder>(N);
  recorder->set_predicate_processes(workers);

  auto icfg_for = [&](ProcessId p) {
    app::Instrument::Config ic;
    ic.vector_clock_mode = true;
    ic.predicate_width = workers.size();
    ic.pred_slot = p.idx() < workers.size() ? p.value() : -1;
    ic.monitor = sim::NodeAddr::monitor(p);
    ic.recorder = recorder;
    return ic;
  };

  for (ProcessId w : workers)
    net.add_node(sim::NodeAddr::app(w),
                 std::make_unique<Worker>(icfg_for(w), collector));
  net.add_node(sim::NodeAddr::app(producer),
               std::make_unique<Producer>(icfg_for(producer), workers, jobs));
  auto col = std::make_unique<Collector>(icfg_for(collector));
  auto* col_ptr = col.get();
  net.add_node(sim::NodeAddr::app(collector), std::move(col));

  auto shared = detect::install_token_vc_monitors(net, workers);

  std::cout << "live pipeline: " << num_workers << " workers, " << jobs
            << " jobs, seed " << seed << "\n";
  net.start_and_run();

  std::cout << "collected " << col_ptr->collected() << "/" << jobs
            << " results; detection "
            << (shared->detected ? "FIRED" : "did not fire") << "\n";
  if (shared->detected) {
    std::cout << "all workers drained at cut [";
    for (std::size_t s = 0; s < shared->cut.size(); ++s)
      std::cout << (s ? "," : "") << shared->cut[s];
    std::cout << "] (virtual time " << shared->detect_time << ")\n";
  }

  // Post-hoc verification against the recorded computation's oracle.
  const Computation recorded = recorder->build();
  const auto oracle = recorded.first_wcp_cut();
  const bool oracle_detects = oracle.has_value();
  std::cout << "recorded-run oracle: "
            << (oracle_detects ? "cut exists" : "no cut") << "\n";
  if (shared->detected != oracle_detects ||
      (oracle_detects && shared->cut != *oracle)) {
    std::cout << "ERROR: live detection disagrees with the recorded oracle\n";
    return 1;
  }
  std::cout << "live detection matches the recorded oracle.\n";
  return 0;
}
