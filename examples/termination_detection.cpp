// Distributed termination detection — the flagship Generalized Conjunctive
// Predicate (GCP, reference [6] of the paper):
//
//     terminated  ⇔  (∀i: passive_i) ∧ (∀ channels: empty)
//
// The run diffuses work messages through the system; a process is passive
// between work items and is reactivated by incoming work. Detecting
// termination with only the local conjunction (∀i passive) is WRONG — it
// fires while work is still in flight. This example shows:
//   1. the WCP detector reporting the (false) all-passive cut,
//   2. the GCP detector rejecting it and finding the true termination cut,
//   3. the ground truth from the workload generator agreeing with 2.
//
//   $ ./termination_detection [processes] [initial_work] [spawn_prob] [seed]
#include <cstdlib>
#include <iostream>

#include "detect/gcp.h"
#include "detect/token_vc.h"
#include "workload/termination_workload.h"

int main(int argc, char** argv) {
  using namespace wcp;

  workload::TerminationSpec spec;
  spec.num_processes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  spec.initial_work = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 4;
  spec.spawn_prob = argc > 3 ? std::strtod(argv[3], nullptr) : 0.4;
  spec.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 21;

  const auto t = workload::make_termination(spec);
  const auto& comp = t.computation;
  std::cout << "work diffusion run: " << comp << ", " << t.work_messages
            << " work messages\n";
  std::cout << "ground-truth termination cut: [";
  for (std::size_t p = 0; p < t.termination_cut.size(); ++p)
    std::cout << (p ? "," : "") << t.termination_cut[p];
  std::cout << "]\n\n";

  // 1. Local predicates only (plain WCP): "everyone is passive".
  detect::RunOptions opts;
  opts.seed = spec.seed;
  const auto wcp_result = detect::run_token_vc(comp, opts);
  std::cout << "WCP (all passive):            " << wcp_result << "\n";
  if (wcp_result.detected && wcp_result.cut != t.termination_cut) {
    std::cout << "  -> FALSE TERMINATION: everyone is passive on that cut"
                 " but work is still in flight:\n";
    for (std::size_t i = 0; i < comp.num_processes(); ++i)
      for (std::size_t j = 0; j < comp.num_processes(); ++j) {
        if (i == j) continue;
        const auto transit = detect::in_transit(
            comp, ProcessId(static_cast<int>(i)), wcp_result.cut[i],
            ProcessId(static_cast<int>(j)), wcp_result.cut[j]);
        if (transit > 0)
          std::cout << "     channel P" << i << "->P" << j << ": " << transit
                    << " message(s) in transit\n";
      }
  }

  // 2. GCP: all passive AND all channels empty.
  const auto channels =
      detect::ChannelPredicate::all_channels_empty(comp.num_processes());
  const auto gcp = detect::detect_gcp(comp, channels);
  std::cout << "\nGCP (passive + channels empty): "
            << (gcp.detected ? "DETECTED" : "not-detected");
  if (gcp.detected) {
    std::cout << " cut=[";
    for (std::size_t s = 0; s < gcp.cut.size(); ++s)
      std::cout << (s ? "," : "") << gcp.cut[s];
    std::cout << "] after " << gcp.eliminations << " eliminations and "
              << gcp.channel_evals << " channel evaluations";
  }
  std::cout << "\n";

  if (!gcp.detected || gcp.cut != t.termination_cut) {
    std::cout << "ERROR: GCP result disagrees with ground truth!\n";
    return 1;
  }
  std::cout << "GCP cut matches the ground-truth termination point.\n";
  return 0;
}
