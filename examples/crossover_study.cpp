// The paper's headline comparison as a runnable study: sweep the predicate
// width n at fixed system size N and print, for both algorithms, the
// measured monitor work and traffic — the crossover the abstract promises
// ("The relative values of n and N determine which algorithm is more
// efficient") lands where n^2 ~ N.
//
//   $ ./crossover_study [N] [events_per_process] [seed]
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "workload/random_workload.h"

int main(int argc, char** argv) {
  using namespace wcp;

  const std::size_t N = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::int64_t events =
      argc > 2 ? std::strtol(argv[2], nullptr, 10) : 30;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 17;

  std::cout << "n-vs-N crossover study: N=" << N << ", ~" << events
            << " events/process, seed " << seed << "\n";
  std::cout << "token-VC costs ~n^2*m; direct-dependence ~N*m; the work "
               "ratio should cross 1 near n ~ sqrt(N)=" << std::setprecision(3)
            << std::sqrt(static_cast<double>(N)) << "\n\n";

  std::cout << std::setw(5) << "n" << std::setw(9) << "n^2/N" << std::setw(12)
            << "token work" << std::setw(10) << "dd work" << std::setw(9)
            << "ratio" << std::setw(14) << "token bits" << std::setw(12)
            << "dd bits" << "  winner\n";

  for (std::size_t n = 2; n <= N; n = n < 4 ? n + 1 : n * 3 / 2) {
    workload::RandomSpec spec;
    spec.num_processes = N;
    spec.num_predicate = n;
    spec.events_per_process = events;
    spec.local_pred_prob = 0.3;
    spec.seed = seed;
    const auto comp = workload::make_random(spec);

    detect::RunOptions opts;
    opts.seed = seed + n;
    opts.latency = sim::LatencyModel::uniform(1, 4);

    const auto token = detect::run_token_vc(comp, opts);
    const auto dd = detect::run_direct_dep(comp, opts);

    const double tw = static_cast<double>(token.monitor_metrics.total_work());
    const double dw = static_cast<double>(dd.monitor_metrics.total_work());
    const double tb =
        static_cast<double>(token.monitor_metrics.total_bits() +
                            token.app_metrics.total_bits(MsgKind::kSnapshot));
    const double db =
        static_cast<double>(dd.monitor_metrics.total_bits() +
                            dd.app_metrics.total_bits(MsgKind::kSnapshot));
    const double ratio = dw > 0 ? tw / dw : 0;
    std::cout << std::setw(5) << n << std::setw(9) << std::fixed
              << std::setprecision(2)
              << static_cast<double>(n * n) / static_cast<double>(N)
              << std::setw(12) << static_cast<std::int64_t>(tw)
              << std::setw(10) << static_cast<std::int64_t>(dw)
              << std::setw(9) << std::setprecision(2) << ratio
              << std::setw(14) << static_cast<std::int64_t>(tb)
              << std::setw(12) << static_cast<std::int64_t>(db) << "  "
              << (ratio < 1.0 ? "token-VC" : "direct-dep") << "\n";
  }

  std::cout << "\n(both algorithms detect the identical first cut on every "
               "row; see tests/agreement_property_test.cc)\n";
  return 0;
}
