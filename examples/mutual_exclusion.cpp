// Detecting mutual-exclusion violations (the paper's §2 example 1).
//
// A buggy lock server occasionally grants the lock to every waiting client
// at once. The WCP  CS_0 ∧ CS_1 ∧ ... ∧ CS_{k-1}  holds exactly when all
// clients are simultaneously inside their critical sections — i.e., when
// mutual exclusion is violated. This example runs many randomized rounds,
// detects the violation online with the token algorithm, and cross-checks
// with the direct-dependence algorithm.
//
//   $ ./mutual_exclusion [num_clients] [rounds] [violation_prob] [seed]
#include <cstdlib>
#include <iostream>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "workload/mutex_workload.h"

int main(int argc, char** argv) {
  using namespace wcp;

  workload::MutexSpec spec;
  spec.num_clients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  spec.rounds_per_client = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 8;
  spec.violation_prob = argc > 3 ? std::strtod(argv[3], nullptr) : 0.15;
  spec.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2024;

  std::cout << "mutex run: " << spec.num_clients << " clients, "
            << spec.rounds_per_client << " rounds, violation_prob="
            << spec.violation_prob << ", seed=" << spec.seed << "\n";

  const auto mc = workload::make_mutex(spec);
  std::cout << "generated " << mc.computation << "\n";
  std::cout << "ground truth: double grant "
            << (mc.violation_injected ? "INJECTED" : "absent") << "\n\n";

  detect::RunOptions opts;
  opts.seed = spec.seed;
  opts.latency = sim::LatencyModel::exponential(4.0);

  const auto token = detect::run_token_vc(mc.computation, opts);
  std::cout << "token-VC detector: " << token << "\n";

  const auto direct = detect::run_direct_dep(mc.computation, opts);
  std::cout << "direct-dep detector: " << direct << "\n\n";

  if (token.detected != mc.violation_injected) {
    std::cout << "ERROR: detector disagrees with ground truth!\n";
    return 1;
  }
  if (token.detected != direct.detected ||
      (token.detected && token.cut != direct.cut)) {
    std::cout << "ERROR: the two algorithms disagree!\n";
    return 1;
  }

  if (token.detected) {
    std::cout << "mutual exclusion VIOLATED; first simultaneous critical "
                 "sections at states:\n";
    for (std::size_t c = 0; c < token.cut.size(); ++c)
      std::cout << "  client " << c << ": local state " << token.cut[c]
                << "\n";
    std::cout << "detected at virtual time " << token.detect_time << " after "
              << token.token_hops << " token hops\n";

    // Distributed breakpoint (Miller-Choi): rerun with halt-on-detect and
    // show where the application froze relative to the violation.
    auto freeze_opts = opts;
    freeze_opts.halt_on_detect = true;
    const auto frozen = detect::run_token_vc(mc.computation, freeze_opts);
    std::cout << "\nwith halt-on-detect, processes froze at states:";
    for (std::size_t p = 0; p < frozen.frozen_cut.size(); ++p)
      std::cout << ' ' << frozen.frozen_cut[p];
    std::cout << "\n(each at or after its violation state — halting is "
                 "asynchronous)\n";
  } else {
    std::cout << "no violation in this run (predicate never held on a "
                 "consistent cut)\n";
  }
  return 0;
}
