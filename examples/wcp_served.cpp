// wcp_served — the streaming detection daemon.
//
// Listens on a loopback TCP port and serves `wcp-stream 1` connections on
// an epoll event loop (serve/event_loop.h): each client opens a session
// (HELLO), attaches detection subscriptions, streams vector-clock
// snapshots, and receives VERDICT frames online plus a final STATS frame.
// Frontier GC keeps per-connection memory bounded by the slowest
// subscription's frontier, not by stream length; the event loop multiplexes
// all connections on a few loop threads, so concurrency is bounded by fds,
// not by thread stacks.
//
//   $ wcp_served --port 0            # ephemeral port, printed on stdout
//   $ wcp_served --port 7410 --once 4 --gc-every 32 --json
//
// All the logic lives in serve/daemon.{h,cc} (so the flag parser and
// report writer are unit-tested); this file is just main().
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/daemon.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  wcp::serve::DaemonOptions opts;
  try {
    opts = wcp::serve::parse_daemon_flags(args);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n" << wcp::serve::daemon_usage();
    return 2;
  }
  return wcp::serve::run_daemon(opts, std::cout, std::cerr);
}
