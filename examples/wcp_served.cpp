// wcp_served — the streaming detection daemon.
//
// Listens on a loopback TCP port and serves `wcp-stream 1` connections:
// each client opens a session (HELLO), attaches detection subscriptions,
// streams vector-clock snapshots, and receives VERDICT frames online plus
// a final STATS frame. Frontier GC keeps per-connection memory bounded by
// the slowest subscription's frontier, not by stream length.
//
//   $ wcp_served --port 0            # ephemeral port, printed on stdout
//   $ wcp_served --port 7410 --once 4 --gc-every 32 --json
//
// Flags:
//   --port p      listen port (0 = kernel-assigned ephemeral; default 7410)
//   --once k      exit after serving k connections (0 = run forever)
//   --threads t   worker lanes for concurrent connections (default 0 = auto)
//   --gc-every k  snapshots between frontier-GC rounds (0 disables GC)
//   --window w    resequencing window (max out-of-order frames buffered)
//   --json        per-connection wcp-run-report/1 lines on stdout
#include <atomic>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/thread_pool.h"
#include "serve/server.h"
#include "serve/tcp.h"

namespace {

using namespace wcp;

std::int64_t arg_int(const std::map<std::string, std::string>& flags,
                     const std::string& key, std::int64_t def) {
  auto it = flags.find(key);
  return it == flags.end() ? def
                           : std::strtoll(it->second.c_str(), nullptr, 10);
}

void report_connection(std::int64_t id, const serve::ConnectionResult& r,
                       bool as_json) {
  if (as_json) {
    json::Writer w(std::cout);
    w.begin_object();
    w.key("schema").value("wcp-run-report/1");
    w.key("name").value("served:connection");
    w.key("connection").value(id);
    w.key("clean").value(r.clean ? 1 : 0);
    if (!r.error.empty()) w.key("error").value(r.error);
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : r.stats.items()) w.key(name).value(value);
    w.end_object();
    w.end_object();
    std::cout << "\n";
  } else {
    std::cout << "connection " << id << (r.clean ? ": clean" : ": failed")
              << " frames=" << r.stats.frames_in
              << " snapshots=" << r.stats.snapshots_in
              << " subscriptions=" << r.stats.subscriptions
              << " verdicts_detected=" << r.stats.verdicts_detected
              << " gc_rounds=" << r.stats.gc_rounds
              << " states_retired=" << r.stats.states_retired;
    if (!r.error.empty()) std::cout << " error=\"" << r.error << '"';
    std::cout << "\n";
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) continue;
    const std::string key = s.substr(2);
    if (key != "json" && i + 1 < argc)
      flags[key] = argv[++i];
    else
      flags[key] = "";
  }
  const bool as_json = flags.contains("json");
  const auto once = arg_int(flags, "once", 0);

  serve::ServeOptions opts;
  opts.gc_every = static_cast<std::size_t>(arg_int(flags, "gc-every", 64));
  opts.reseq_window = static_cast<std::size_t>(arg_int(flags, "window", 256));

  try {
    serve::TcpListener listener(
        static_cast<std::uint16_t>(arg_int(flags, "port", 7410)));
    std::cout << "wcp_served: listening on 127.0.0.1:" << listener.port()
              << "\n";
    std::cout.flush();

    common::ThreadPool pool(
        static_cast<std::size_t>(arg_int(flags, "threads", 0)));
    std::atomic<std::int64_t> active{0};
    std::int64_t served = 0;
    while (once == 0 || served < once) {
      std::shared_ptr<serve::TcpTransport> conn = listener.accept();
      const std::int64_t id = served++;
      ++active;
      pool.submit([conn, id, opts, as_json, &active] {
        const serve::ConnectionResult r = serve::serve_connection(*conn, opts);
        report_connection(id, r, as_json);
        --active;
      });
    }
    while (active.load() > 0) std::this_thread::yield();
  } catch (const std::exception& e) {
    std::cerr << "wcp_served: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
