// Detecting a two-phase-locking compatibility bug (the paper's §2
// example 2): "P_reader holds a read lock" ∧ "P_writer holds a write lock"
// on the same item.
//
// This example also demonstrates the paper's n-vs-N trade-off: the
// predicate involves only 2 processes while the system has many, so the
// vector-clock algorithm runs 2 monitors while the direct-dependence
// algorithm must involve all N. The printed message counts show the
// crossover the paper's §4.4 discusses.
//
//   $ ./db_locking [readers] [writers] [rounds] [violation_prob] [seed]
#include <cstdlib>
#include <iostream>

#include "detect/direct_dep.h"
#include "detect/token_vc.h"
#include "workload/db_workload.h"

int main(int argc, char** argv) {
  using namespace wcp;

  workload::DbSpec spec;
  spec.num_readers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  spec.num_writers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  spec.rounds = argc > 3 ? std::strtol(argv[3], nullptr, 10) : 8;
  spec.violation_prob = argc > 4 ? std::strtod(argv[4], nullptr) : 0.2;
  spec.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 7;

  const auto db = workload::make_db(spec);
  const auto& comp = db.computation;
  const std::size_t N = comp.num_processes();
  const std::size_t n = comp.predicate_processes().size();

  std::cout << "2PL run: " << spec.num_readers << " readers, "
            << spec.num_writers << " writers, " << spec.rounds
            << " rounds (N=" << N << ", n=" << n << ")\n";
  std::cout << "ground truth: incompatible grant "
            << (db.violation_injected ? "INJECTED" : "absent") << "\n\n";

  detect::RunOptions opts;
  opts.seed = spec.seed;
  opts.latency = sim::LatencyModel::uniform(1, 6);

  const auto token = detect::run_token_vc(comp, opts);
  const auto direct = detect::run_direct_dep(comp, opts);

  std::cout << "token-VC  (n=" << n << " monitors): " << token << "\n"
            << "  monitor traffic: " << token.monitor_metrics.summary()
            << "\n";
  std::cout << "direct-dep (N=" << N << " monitors): " << direct << "\n"
            << "  monitor traffic: " << direct.monitor_metrics.summary()
            << "\n\n";

  if (token.detected != db.violation_injected ||
      direct.detected != db.violation_injected) {
    std::cout << "ERROR: detection disagrees with ground truth!\n";
    return 1;
  }

  if (token.detected) {
    std::cout << "2PL VIOLATED: reader P0 held its read lock in state "
              << token.cut[0] << " while writer held its write lock in state "
              << token.cut[1] << " — a lost-update hazard.\n";
  } else {
    std::cout << "lock compatibility respected in this run\n";
  }

  std::cout << "\nn-vs-N trade-off on this run:\n"
            << "  token-VC monitor messages:   "
            << token.monitor_metrics.total_messages() << " (predicate "
            << "processes only)\n"
            << "  direct-dep monitor messages: "
            << direct.monitor_metrics.total_messages() << " (all " << N
            << " processes participate)\n";
  return 0;
}
