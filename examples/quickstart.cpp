// Quickstart: build a tiny distributed computation, define a weak
// conjunctive predicate over it, and detect the first cut where it holds,
// using each of the paper's algorithms.
//
//   $ ./quickstart
#include <iostream>

#include "detect/centralized.h"
#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/multi_token.h"
#include "detect/token_vc.h"
#include "trace/computation.h"

int main() {
  using namespace wcp;

  // A three-process run. P0 and P1 carry local predicates ("x > 0" on P0,
  // "y > 0" on P1, say); P2 only relays messages.
  //
  //   P0:  [1:pred]  --m0-->        [2:pred]
  //   P2:  [1]  (recv m0) [2] --m1--> [3]
  //   P1:  [1]        (recv m1) [2:pred]
  //
  // (0,1) happened before (1,2) through the relay, so the first consistent
  // cut with both predicates true is {(0,2), (1,2)}.
  ComputationBuilder builder(3);
  builder.set_predicate_processes({ProcessId(0), ProcessId(1)});
  builder.mark_pred(ProcessId(0), true);             // P0 state 1
  builder.transfer(ProcessId(0), ProcessId(2));      // m0
  builder.mark_pred(ProcessId(0), true);             // P0 state 2
  builder.transfer(ProcessId(2), ProcessId(1));      // m1
  builder.mark_pred(ProcessId(1), true);             // P1 state 2
  const Computation comp = builder.build();

  std::cout << "computation: " << comp << "\n";

  // Offline reference: the pointwise-minimal WCP cut.
  if (const auto cut = comp.first_wcp_cut()) {
    std::cout << "oracle first WCP cut: (" << (*cut)[0] << ", " << (*cut)[1]
              << ")\n\n";
  }

  detect::RunOptions opts;
  opts.seed = 1;
  opts.latency = sim::LatencyModel::uniform(1, 5);

  const auto report = [](const char* name, const detect::DetectionResult& r) {
    std::cout << name << ": " << r << "\n  " << r.monitor_metrics.summary()
              << "\n";
  };

  report("single-token vector clock (S3) ", detect::run_token_vc(comp, opts));

  detect::MultiTokenOptions mt;
  mt.num_groups = 2;
  report("multi-token, g=2 (S3.5)        ",
         detect::run_multi_token(comp, opts, mt));

  report("direct dependence (S4)         ",
         detect::run_direct_dep(comp, opts));

  detect::DdRunOptions par;
  par.parallel = true;
  report("parallel direct dependence     ",
         detect::run_direct_dep(comp, opts, par));

  report("centralized checker (baseline) ",
         detect::run_centralized(comp, opts));

  const auto lat = detect::detect_lattice(comp);
  std::cout << "lattice baseline               : "
            << (lat.detected ? "DETECTED" : "not-detected") << " after "
            << lat.cuts_explored << " cuts explored\n";
  return 0;
}
