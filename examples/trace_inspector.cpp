// Trace tooling: generate a random computation (or load one), save it in
// the wcp-trace text format, reload it, and analyze it — states, causality,
// the first WCP cut, and what every detector reports. Loading sniffs the
// file's magic bytes, so wcp-tracebin binaries work as inputs too.
//
//   $ ./trace_inspector                      # generate + analyze
//   $ ./trace_inspector my.trace             # analyze an existing trace
//   $ ./trace_inspector --emit my.trace      # generate, save, analyze
#include <cstring>
#include <iostream>
#include <string>

#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/token_vc.h"
#include "trace/diagram.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"
#include "workload/random_workload.h"

namespace {

void analyze(const wcp::Computation& comp) {
  using namespace wcp;
  const auto preds = comp.predicate_processes();
  std::cout << comp << "\n";
  std::cout << "predicate over:";
  for (ProcessId p : preds) std::cout << ' ' << p;
  std::cout << "\n\nper-process timelines:\n";
  for (std::size_t p = 0; p < comp.num_processes(); ++p) {
    const ProcessId pid(static_cast<int>(p));
    std::cout << "  " << pid << " (" << comp.num_states(pid) << " states): ";
    const StateIndex limit = std::min<StateIndex>(comp.num_states(pid), 40);
    for (StateIndex k = 1; k <= limit; ++k)
      std::cout << (comp.local_pred(pid, k) ? 'T' : '.');
    if (limit < comp.num_states(pid)) std::cout << "...";
    std::cout << "\n";
  }

  std::cout << "\nspace-time diagram (truncated):\n";
  DiagramOptions dopts;
  dopts.max_states = 8;
  if (const auto c = comp.first_wcp_cut()) {
    dopts.cut_procs.assign(comp.predicate_processes().begin(),
                           comp.predicate_processes().end());
    dopts.cut = *c;
  }
  std::cout << render_diagram(comp, dopts);

  std::cout << "\noracle: ";
  const auto cut = comp.first_wcp_cut();
  if (cut) {
    std::cout << "first WCP cut = [";
    for (std::size_t s = 0; s < cut->size(); ++s)
      std::cout << (s ? "," : "") << (*cut)[s];
    std::cout << "]\n";
  } else {
    std::cout << "the WCP never holds\n";
  }

  detect::RunOptions opts;
  opts.seed = 11;
  std::cout << "token-VC:   " << detect::run_token_vc(comp, opts) << "\n";
  std::cout << "direct-dep: " << detect::run_direct_dep(comp, opts) << "\n";
  const auto lat = detect::detect_lattice(comp, 1'000'000);
  std::cout << "lattice:    " << (lat.detected ? "DETECTED" : "not-detected")
            << " (" << lat.cuts_explored << " cuts explored"
            << (lat.truncated ? ", truncated" : "") << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wcp;

  std::string path;
  bool emit = false;
  if (argc >= 3 && std::strcmp(argv[1], "--emit") == 0) {
    emit = true;
    path = argv[2];
  } else if (argc >= 2) {
    path = argv[1];
  }

  if (!path.empty() && !emit) {
    std::cout << "loading trace from " << path << "\n";
    analyze(load_any_trace_file(path));  // sniffs text vs wcp-tracebin
    return 0;
  }

  workload::RandomSpec spec;
  spec.num_processes = 6;
  spec.num_predicate = 4;
  spec.events_per_process = 18;
  spec.local_pred_prob = 0.3;
  spec.seed = 99;
  const auto comp = workload::make_random(spec);

  if (emit) {
    save_trace_file(path, comp);
    std::cout << "wrote " << path << "\n";
    // Verify round-trip.
    const auto reread = load_trace_file(path);
    std::cout << "round-trip check: "
              << (reread.first_wcp_cut() == comp.first_wcp_cut() ? "OK"
                                                                 : "MISMATCH")
              << "\n\n";
    analyze(reread);
  } else {
    analyze(comp);
  }
  return 0;
}
