// wcp_cli — command-line front end for the library.
//
// Subcommands:
//   generate <out.trace> [--N k] [--n k] [--events k] [--pred-prob p] [--seed s]
//            [--binary]
//       Generate a random computation and save it as a wcp-trace text file,
//       or with --binary as a columnar wcp-tracebin file.
//   detect <in.trace> [--algo token|multi|dd|dd-par|checker|lattice|oracle]
//          [--groups g] [--seed s]
//       Run one detector on a trace and print the result + cost metrics.
//   info <in.trace>
//       Print the trace's shape and the oracle's first WCP cut.
//
// Every command that reads a trace sniffs the magic bytes, so text and
// binary files are interchangeable inputs.
//
// Example:
//   $ wcp_cli generate /tmp/run.trace --N 8 --n 4 --events 30
//   $ wcp_cli detect /tmp/run.trace --algo dd
#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "common/json.h"
#include "detect/batch.h"
#include "serve/replay.h"
#include "serve/tcp.h"
#include "detect/centralized.h"
#include "detect/lattice_online.h"
#include "detect/direct_dep.h"
#include "detect/lattice.h"
#include "detect/multi_token.h"
#include "detect/report.h"
#include "detect/sliced.h"
#include "detect/token_vc.h"
#include "slice/slice.h"
#include "trace/diagram.h"
#include "trace/dot_export.h"
#include "trace/trace_io.h"
#include "trace/trace_store.h"
#include "workload/random_workload.h"

namespace {

using namespace wcp;

struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

/// Flags that never take a value (so `--json in.trace` does not swallow the
/// trace path).
bool is_boolean_flag(const std::string& key) {
  return key == "json" || key == "binary" || key == "verdict" ||
         key == "trusted";
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      const std::string key = s.substr(2);
      if (!is_boolean_flag(key) && i + 1 < argc) {
        a.flags[key] = argv[++i];
      } else {
        a.flags[key] = "";
      }
    } else {
      a.positional.push_back(std::move(s));
    }
  }
  return a;
}

std::int64_t flag_int(const Args& a, const std::string& key,
                      std::int64_t def) {
  auto it = a.flags.find(key);
  return it == a.flags.end() ? def : std::strtoll(it->second.c_str(),
                                                  nullptr, 10);
}

double flag_double(const Args& a, const std::string& key, double def) {
  auto it = a.flags.find(key);
  return it == a.flags.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string flag_str(const Args& a, const std::string& key,
                     const std::string& def) {
  auto it = a.flags.find(key);
  return it == a.flags.end() ? def : it->second;
}

/// --trusted skips the O(file) semantic replay verification of binary
/// traces (structural validation always runs); the mmap fast path for
/// files we wrote ourselves.
TraceLoadOptions load_opts(const Args& a) {
  TraceLoadOptions opts;
  opts.verify_replay = !a.flags.contains("trusted");
  return opts;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  wcp_cli generate <out.trace> [--N k] [--n k] [--events k]\n"
      "                   [--pred-prob p] [--seed s] [--detectable 0|1]\n"
      "                   [--binary]   write wcp-tracebin instead of text\n"
      "  wcp_cli detect   <in.trace> [--algo token|multi|dd|dd-par|checker|"
      "lattice|lattice-online|lattice-sliced|definitely|definitely-sliced|"
      "oracle]\n"
      "                   [--groups g] [--seed s] [--halt 0|1] [--json]\n"
      "                   [--threads t]   t=0: WCP_THREADS env or hardware\n"
      "                   [--faults spec]   e.g. "
      "--faults drop=0.2,dup=0.05,seed=7,crash=m1@40+30\n"
      "                   [--verdict]   print only the canonical verdict "
      "line\n"
      "                   [--trusted]   skip the binary loader's replay "
      "check\n"
      "  wcp_cli stream   <in.trace> [--algos token,checker,lattice-online,"
      "slicer]\n"
      "                   [--faults spec] [--reorder p] [--gc-every k]\n"
      "                   [--window w] [--connect host:port] [--json]\n"
      "  wcp_cli slice    <in.trace> [--max-cuts k] [--threads t] [--json]\n"
      "  wcp_cli sweep    <in.trace> [--algos a,b,..] [--seeds s1,s2,..]\n"
      "                   [--threads t] [--json]\n"
      "  wcp_cli info     <in.trace>\n"
      "  wcp_cli diagram  <in.trace> [--max-states k]\n"
      "  wcp_cli dot      <in.trace>\n";
  return 2;
}

void print_cut(const std::vector<StateIndex>& cut) {
  std::cout << '[';
  for (std::size_t s = 0; s < cut.size(); ++s)
    std::cout << (s ? "," : "") << cut[s];
  std::cout << ']';
}

/// The canonical algorithm-agnostic verdict line. `wcp_cli detect --verdict`
/// and `wcp_cli stream` both emit exactly this, so a byte-diff proves the
/// streamed path reproduces the offline one (CI does exactly that).
void print_verdict_line(bool detected, const std::vector<StateIndex>& cut) {
  json::Writer w(std::cout);
  w.begin_object();
  w.key("schema").value("wcp-verdict/1");
  w.key("detected").value(detected);
  w.key("cut").begin_array();
  if (detected)
    for (const StateIndex k : cut) w.value(k);
  w.end_array();
  w.end_object();
  std::cout << "\n";
}

int cmd_generate(const Args& a) {
  if (a.positional.size() < 2) return usage();
  workload::RandomSpec spec;
  spec.num_processes = static_cast<std::size_t>(flag_int(a, "N", 8));
  spec.num_predicate = static_cast<std::size_t>(flag_int(a, "n", 4));
  spec.events_per_process = flag_int(a, "events", 20);
  spec.local_pred_prob = flag_double(a, "pred-prob", 0.3);
  spec.ensure_detectable = flag_int(a, "detectable", 0) != 0;
  spec.seed = static_cast<std::uint64_t>(flag_int(a, "seed", 42));
  const auto comp = workload::make_random(spec);
  if (a.flags.contains("binary")) {
    save_tracebin_file(a.positional[1], comp);
    const auto ts = comp.trace_store_stats();
    std::cout << "wrote " << a.positional[1] << " (wcp-tracebin 1): " << comp
              << "\n  clocks=" << ts.clocks_interned
              << " delta_entries=" << ts.delta_entries
              << " delta_ratio=" << ts.delta_ratio << "\n";
  } else {
    save_trace_file(a.positional[1], comp);
    std::cout << "wrote " << a.positional[1] << ": " << comp << "\n";
  }
  return 0;
}

int cmd_info(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  std::cout << comp << "\n";
  std::cout << "m (max events/process): " << comp.max_messages_per_process()
            << "\n";
  if (const auto cut = comp.first_wcp_cut()) {
    std::cout << "first WCP cut: ";
    print_cut(*cut);
    std::cout << "\n";
  } else {
    std::cout << "the WCP never holds in this run\n";
  }
  return 0;
}

int cmd_diagram(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  DiagramOptions opts;
  opts.max_states = flag_int(a, "max-states", 0);
  opts.message_table = true;
  if (const auto cut = comp.first_wcp_cut()) {
    opts.cut_procs.assign(comp.predicate_processes().begin(),
                          comp.predicate_processes().end());
    opts.cut = *cut;
  }
  std::cout << render_diagram(comp, opts);
  return 0;
}

int cmd_dot(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  DotOptions opts;
  if (const auto cut = comp.first_wcp_cut()) {
    opts.cut_procs.assign(comp.predicate_processes().begin(),
                          comp.predicate_processes().end());
    opts.cut = *cut;
  }
  export_dot(std::cout, comp, opts);
  return 0;
}

detect::ReportParams report_params(const Computation& comp,
                                   std::uint64_t seed) {
  detect::ReportParams rp;
  rp.N = static_cast<std::int64_t>(comp.num_processes());
  rp.n = static_cast<std::int64_t>(comp.predicate_processes().size());
  rp.m = comp.max_messages_per_process();
  rp.seed = seed;
  return rp;
}

int cmd_detect(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  const std::string algo = flag_str(a, "algo", "token");
  const bool as_json = a.flags.contains("json");

  detect::RunOptions opts;
  opts.seed = static_cast<std::uint64_t>(flag_int(a, "seed", 1));
  opts.latency = sim::LatencyModel::uniform(1, 6);
  opts.halt_on_detect = flag_int(a, "halt", 0) != 0;
  const std::string fault_spec = flag_str(a, "faults", "");
  if (!fault_spec.empty()) opts.faults = sim::FaultPlan::parse(fault_spec);
  detect::ReportParams rp = report_params(comp, opts.seed);
  // Echo the canonical (round-tripped) spec so the report pins down the
  // exact fault schedule the run used.
  if (opts.faults.enabled()) rp.faults = opts.faults.to_string();

  const auto emit_flat =
      [&](const std::vector<std::pair<std::string, detect::MetricValue>>&
              metrics) {
        json::Writer w(std::cout);
        detect::write_run_report(w, "cli:" + algo, rp, metrics, std::nullopt,
                                 std::nullopt);
        std::cout << "\n";
      };

  const bool verdict_only = a.flags.contains("verdict");
  if (algo == "oracle") {
    const auto cut = comp.first_wcp_cut();
    if (verdict_only) {
      print_verdict_line(cut.has_value(),
                         cut.value_or(std::vector<StateIndex>{}));
      return 0;
    }
    if (as_json) {
      emit_flat({{"detected", cut ? 1 : 0}});
      return 0;
    }
    if (cut) {
      std::cout << "oracle: DETECTED cut=";
      print_cut(*cut);
      std::cout << "\n";
    } else {
      std::cout << "oracle: not-detected\n";
    }
    return 0;
  }
  if (algo == "lattice-online" || algo == "lattice" ||
      algo == "lattice-sliced") {
    const auto report_lattice = [&](bool detected,
                                    const std::vector<StateIndex>& cut,
                                    std::int64_t cuts_explored,
                                    std::int64_t max_frontier, bool truncated,
                                    std::int64_t witness_len,
                                    const TraceStoreStats& ts) {
      if (verdict_only) {
        print_verdict_line(detected, cut);
        return;
      }
      if (as_json) {
        std::vector<std::pair<std::string, detect::MetricValue>> metrics = {
            {"detected", detected ? 1 : 0},
            {"cuts_explored", cuts_explored},
            {"max_frontier", max_frontier},
            {"truncated", truncated ? 1 : 0},
            {"witness_len", witness_len}};
        if (ts.materialized()) {
          metrics.emplace_back("store_peak_bytes", ts.peak_bytes);
          metrics.emplace_back("store_delta_ratio", ts.delta_ratio);
        }
        emit_flat(metrics);
        return;
      }
      std::cout << algo << ": " << (detected ? "DETECTED" : "not-detected");
      if (detected) {
        std::cout << " cut=";
        print_cut(cut);
        std::cout << " witness_len=" << witness_len;
      }
      std::cout << " cuts_explored=" << cuts_explored
                << " max_frontier=" << max_frontier
                << (truncated ? " (truncated)" : "");
      if (ts.materialized())
        std::cout << " store_peak_bytes=" << ts.peak_bytes;
      std::cout << "\n";
    };
    if (algo == "lattice") {
      const auto threads =
          static_cast<std::size_t>(flag_int(a, "threads", 0));
      const auto r = detect::detect_lattice(comp, 10'000'000, threads);
      report_lattice(r.detected, r.cut, r.cuts_explored, r.max_frontier,
                     r.truncated,
                     static_cast<std::int64_t>(r.witness_path.size()),
                     r.trace_store);
    } else if (algo == "lattice-sliced") {
      const auto threads =
          static_cast<std::size_t>(flag_int(a, "threads", 0));
      const auto r = detect::detect_lattice_sliced(comp, threads);
      report_lattice(r.detected, r.cut, r.cuts_explored, r.max_frontier,
                     r.truncated,
                     static_cast<std::int64_t>(r.witness_path.size()),
                     r.trace_store);
    } else {
      const auto r = detect::run_lattice_online(comp, opts, 10'000'000);
      report_lattice(r.detected, r.cut, r.cuts_explored, r.max_frontier,
                     r.truncated, 0, TraceStoreStats{});
    }
    return 0;
  }
  if (algo == "definitely" || algo == "definitely-sliced") {
    const auto threads = static_cast<std::size_t>(flag_int(a, "threads", 0));
    const auto r =
        algo == "definitely"
            ? detect::detect_definitely(comp, 10'000'000, threads)
            : detect::detect_definitely_sliced(comp, 10'000'000, threads);
    if (as_json) {
      std::int64_t witness_level = 0;
      for (StateIndex k : r.witness) witness_level += k;
      std::vector<std::pair<std::string, detect::MetricValue>> metrics = {
          {"definitely", r.definitely ? 1 : 0},
          {"cuts_explored", r.cuts_explored},
          {"truncated", r.truncated ? 1 : 0},
          {"witness_found", r.witness.empty() ? 0 : 1},
          {"witness_level", witness_level},
          {"witness_len", static_cast<std::int64_t>(r.witness_path.size())}};
      if (r.trace_store.materialized()) {
        metrics.emplace_back("store_peak_bytes", r.trace_store.peak_bytes);
        metrics.emplace_back("store_delta_ratio", r.trace_store.delta_ratio);
      }
      emit_flat(metrics);
      return 0;
    }
    std::cout << algo << ": "
              << (r.truncated ? "inconclusive"
                              : (r.definitely ? "DEFINITELY" : "not-definitely"))
              << " cuts_explored=" << r.cuts_explored
              << (r.truncated ? " (truncated)" : "");
    if (!r.witness.empty()) {
      std::cout << " witness=";
      print_cut(r.witness);
    }
    std::cout << "\n";
    return 0;
  }

  detect::DetectionResult r;
  // The paper's work budget for the chosen algorithm: O(n^2 m) for the
  // vector-clock family (§3.4), O(Nm) for direct dependence (§4.4).
  double bound = 0;
  const double nd = static_cast<double>(rp.n);
  const double md = static_cast<double>(rp.m);
  if (algo == "token") {
    r = detect::run_token_vc(comp, opts);
    bound = nd * nd * md;
  } else if (algo == "multi") {
    detect::MultiTokenOptions mt;
    mt.num_groups = static_cast<int>(flag_int(a, "groups", 2));
    r = detect::run_multi_token(comp, opts, mt);
    bound = nd * nd * md;
  } else if (algo == "dd" || algo == "dd-par") {
    detect::DdRunOptions dd;
    dd.parallel = (algo == "dd-par");
    r = detect::run_direct_dep(comp, opts, dd);
    bound = static_cast<double>(rp.N) * md;
  } else if (algo == "checker") {
    r = detect::run_centralized(comp, opts);
    bound = nd * nd * md;
  } else {
    std::cerr << "unknown --algo '" << algo << "'\n";
    return usage();
  }
  if (verdict_only) {
    print_verdict_line(r.detected, r.cut);
    return 0;
  }
  if (as_json) {
    const double work = static_cast<double>(r.monitor_metrics.total_work());
    std::optional<double> ratio;
    if (bound > 0) ratio = work / bound;
    json::Writer w(std::cout);
    detect::write_run_report(w, "cli:" + algo, rp, r,
                             bound > 0 ? std::optional<double>(bound)
                                       : std::nullopt,
                             ratio);
    std::cout << "\n";
    return 0;
  }
  std::cout << algo << ": " << r << "\n";
  if (!r.frozen_cut.empty()) {
    std::cout << "  frozen at: ";
    print_cut(r.frozen_cut);
    std::cout << "\n";
  }
  std::cout << "  app:     " << r.app_metrics.summary() << "\n";
  std::cout << "  monitor: " << r.monitor_metrics.summary() << "\n";
  return 0;
}

std::vector<std::string> split_list(const std::string& csv);

int cmd_stream(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  const bool as_json = a.flags.contains("json");

  serve::ReplayOptions opts;
  opts.serve.gc_every = static_cast<std::size_t>(flag_int(a, "gc-every", 64));
  opts.client.window = static_cast<std::size_t>(flag_int(a, "window", 64));
  const std::string fault_spec = flag_str(a, "faults", "");
  if (!fault_spec.empty())
    opts.faults.plan = sim::FaultPlan::parse(fault_spec);
  opts.faults.reorder = flag_double(a, "reorder", 0.0);

  std::vector<std::string> algos = split_list(
      flag_str(a, "algos", "token,checker,lattice-online,slicer"));
  for (const std::string& name : algos) {
    serve::ReplaySubscription sub;
    sub.algo = serve::stream_algo_from_string(name);
    opts.subs.push_back(sub);
  }

  serve::ReplayResult r;
  const std::string connect = flag_str(a, "connect", "");
  if (!connect.empty()) {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect expects host:port\n";
      return usage();
    }
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(connect.substr(colon + 1).c_str(), nullptr, 10));
    const auto t = serve::tcp_connect(connect.substr(0, colon), port);
    r = serve::replay_stream_over(comp, opts, *t);
  } else {
    r = serve::replay_stream(comp, opts);
  }

  if (as_json) {
    detect::ReportParams rp = report_params(comp, 0);
    if (opts.faults.plan.enabled()) rp.faults = opts.faults.plan.to_string();
    std::vector<std::pair<std::string, detect::MetricValue>> metrics;
    for (const auto& [name, value] : r.stats.items())
      metrics.emplace_back(name, value);
    metrics.emplace_back("pipe_frames_sent", r.pipe.sent);
    metrics.emplace_back("pipe_frames_dropped", r.pipe.dropped);
    metrics.emplace_back("pipe_frames_duplicated", r.pipe.duplicated);
    metrics.emplace_back("pipe_frames_reordered", r.pipe.reordered);
    metrics.emplace_back("client_retransmits", r.retransmits);
    json::Writer w(std::cout);
    detect::write_run_report(w, "cli:stream", rp, metrics, std::nullopt,
                             std::nullopt);
    std::cout << "\n";
    return 0;
  }
  // One canonical verdict line per subscription, in subscription order —
  // byte-identical to `detect --verdict` on the same trace and algorithm.
  std::vector<serve::VerdictBody> by_sub = r.verdicts;
  std::sort(by_sub.begin(), by_sub.end(),
            [](const serve::VerdictBody& x, const serve::VerdictBody& y) {
              return x.sub_id < y.sub_id;
            });
  for (const serve::VerdictBody& v : by_sub)
    print_verdict_line(v.detected, v.cut);
  return 0;
}

int cmd_slice(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  const bool as_json = a.flags.contains("json");
  const std::int64_t max_cuts = flag_int(a, "max-cuts", 1'000'000);
  const auto threads = static_cast<std::size_t>(flag_int(a, "threads", 0));

  slice::SliceBuildCounters ctr;
  const auto sl = slice::Slice::build(comp, &ctr, threads);
  const auto cc = sl.num_cuts(max_cuts);
  const auto possibly = detect::detect_lattice_sliced(comp);
  const auto definitely = detect::detect_definitely_sliced(comp, 10'000'000);

  if (as_json) {
    const detect::ReportParams rp = report_params(comp, 0);
    json::Writer w(std::cout);
    detect::write_run_report(
        w, "cli:slice", rp,
        {{"possibly", possibly.detected ? 1 : 0},
         {"definitely", definitely.definitely ? 1 : 0},
         {"definitely_truncated", definitely.truncated ? 1 : 0},
         {"slice_groups", sl.num_groups()},
         {"slice_edges", sl.num_edges()},
         {"slice_cuts", cc.count},
         {"slice_cuts_saturated", cc.saturated ? 1 : 0},
         {"jil_advances", ctr.jil.advances},
         {"jil_clock_lookups", ctr.jil.clock_lookups},
         {"possibly_cuts_explored", possibly.cuts_explored},
         {"definitely_cuts_explored", definitely.cuts_explored}},
        std::nullopt, std::nullopt);
    std::cout << "\n";
    return 0;
  }

  std::cout << "slice: " << (sl.empty() ? "EMPTY" : "non-empty")
            << " groups=" << sl.num_groups() << " edges=" << sl.num_edges()
            << " satisfying_cuts=" << cc.count
            << (cc.saturated ? "+ (capped)" : "") << "\n";
  if (!sl.empty()) {
    std::cout << "  bottom: ";
    print_cut(sl.bottom());
    std::cout << "\n  top:    ";
    print_cut(sl.top());
    std::cout << "\n";
  }
  std::cout << "  possibly=" << (possibly.detected ? "yes" : "no")
            << " (cuts_explored=" << possibly.cuts_explored << ")"
            << " definitely=" << (definitely.definitely ? "yes" : "no")
            << " (cuts_explored=" << definitely.cuts_explored << ")\n";
  if (!definitely.witness.empty()) {
    std::cout << "  avoiding-observation witness: ";
    print_cut(definitely.witness);
    std::cout << "\n";
  }
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int cmd_sweep(const Args& a) {
  if (a.positional.size() < 2) return usage();
  const auto comp = load_any_trace_file(a.positional[1], load_opts(a));
  const bool as_json = a.flags.contains("json");
  const auto threads = static_cast<std::size_t>(flag_int(a, "threads", 0));

  const auto algos =
      split_list(flag_str(a, "algos", "token,dd,lattice,lattice-sliced"));
  std::vector<std::uint64_t> seeds;
  for (const std::string& s : split_list(flag_str(a, "seeds", "1,2,3,4")))
    seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
  if (algos.empty() || seeds.empty()) return usage();

  const auto rows =
      detect::run_sweep(comp, detect::cross_jobs(algos, seeds), threads);
  for (const auto& row : rows) {
    if (as_json) {
      std::cout << row.report << "\n";
      continue;
    }
    const bool is_def = row.algo.rfind("definitely", 0) == 0;
    std::cout << row.algo << " seed=" << row.seed << ": "
              << (row.verdict ? (is_def ? "DEFINITELY" : "DETECTED")
                              : (is_def ? "not-definitely" : "not-detected"))
              << " cost=" << row.cost;
    if (!row.cut.empty()) {
      std::cout << " cut=";
      print_cut(row.cut);
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.positional.empty()) return usage();
  try {
    const std::string& cmd = a.positional[0];
    if (cmd == "generate") return cmd_generate(a);
    if (cmd == "detect") return cmd_detect(a);
    if (cmd == "stream") return cmd_stream(a);
    if (cmd == "slice") return cmd_slice(a);
    if (cmd == "sweep") return cmd_sweep(a);
    if (cmd == "info") return cmd_info(a);
    if (cmd == "diagram") return cmd_diagram(a);
    if (cmd == "dot") return cmd_dot(a);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
